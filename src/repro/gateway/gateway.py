"""The gateway: sharded multi-tenant serving over a warm worker pool.

This is the policy layer that turns the mechanism modules into a
service front end:

* :class:`~repro.gateway.admission.AdmissionController` decides whether
  a submission may exist (typed 429/503 rejections);
* :class:`~repro.gateway.ring.HashRing` decides *where* it runs —
  ``(tenant, session_id)`` keys stick to slots, so consecutive batches
  of one session always hit the worker holding its warm
  :class:`repro.sessions.Session` state and checkpoint spool;
* :class:`~repro.gateway.workers.WorkerPool` executes, and the
  gateway's collector thread turns its message stream into resolved
  :class:`JobHandle`\\ s, admission releases, and
  :class:`~repro.gateway.events.EventBus` lifecycle events;
* worker death (crash or chaos :meth:`Gateway.kill_worker`) is healed
  inline: the slot is respawned deterministically (same ring arc, next
  incarnation) and every unresolved message is requeued in its
  original send order — plain jobs re-execute (deterministic by
  construction), session batches resume from the versioned checkpoint
  spool and answer idempotently;
* with a ``journal_dir`` configured, every submission is written ahead
  to the :class:`~repro.gateway.journal.Journal` (admit, dispatch,
  checkpoint, done), so death of the *gateway process itself* is
  survivable: :meth:`Gateway.start` replays the journal through
  :func:`~repro.gateway.recovery.recover_state`, rebuilds the
  admission ledger and session table, requeues every non-completed
  submission in admission order, and answers repeated
  ``Idempotency-Key`` submissions from the recorded results instead of
  re-executing.

Digest identity is the invariant everything above preserves: a job
served through the gateway runs the *same* ``_execute_job`` body as the
``workers=0`` inline path, and a session batch applies through the same
:class:`~repro.sessions.Session` delta planners — so results are
byte-identical to inline replay, which the smoke step and the test
suite assert end to end.
"""

from __future__ import annotations

import itertools
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import Overloaded, StorageFault
from ..serve.faults import DiskFaultPlan, FaultInjected
from ..serve.jobs import JobSpec, estimate_cost
from ..sessions.spec import SessionSpec
from .admission import AdmissionController, TenantQuota
from .events import EventBus, wire_gauges
from .journal import Journal
from .recovery import RecoveredState, recover_state
from .ring import HashRing, shard_key
from .workers import WorkerPool

__all__ = ["Gateway", "GatewayConfig", "JobHandle"]


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway deployment shape (plain, JSON-able data)."""

    workers: int = 2
    replicas: int = 64
    max_total_pending: int = 256
    tenants: dict = field(default_factory=dict)     # name -> TenantQuota
    default_quota: TenantQuota | None = None
    checkpoint_dir: str | None = None
    start_method: str | None = None
    #: write-ahead journal directory (None = no durability; the
    #: gateway then neither survives restarts nor answers
    #: ``Idempotency-Key`` repeats across them)
    journal_dir: str | None = None
    #: deterministic disk weather for the journal's appends
    #: (a :class:`~repro.serve.faults.DiskFaultPlan` dict)
    journal_fault: dict | None = None
    #: resolved handles retained for idempotency/result lookups; the
    #: oldest are evicted beyond this bound (recorded ``done`` journal
    #: records outlive the eviction — they are just no longer answered
    #: from memory)
    max_done_handles: int = 4096

    @classmethod
    def from_dict(cls, d) -> "GatewayConfig":
        default = d.get("default_quota")
        return cls(
            workers=int(d.get("workers", 2)),
            replicas=int(d.get("replicas", 64)),
            max_total_pending=int(d.get("max_total_pending", 256)),
            tenants={name: TenantQuota.from_dict(q)
                     for name, q in d.get("tenants", {}).items()},
            default_quota=(TenantQuota.from_dict(default)
                           if default is not None else None),
            checkpoint_dir=d.get("checkpoint_dir"),
            start_method=d.get("start_method"),
            journal_dir=d.get("journal_dir"),
            journal_fault=d.get("journal_fault"),
            max_done_handles=int(d.get("max_done_handles", 4096)),
        )


@dataclass
class JobHandle:
    """The caller's future for one admitted submission."""

    job_id: str
    tenant: str
    kind: str                       # "job" | "session_batch" | "ping"
    name: str                       # spec/session name
    slot: int
    cost: float = 0.0
    status: str = "queued"          # queued|running|ok|failed
    #: the pool's :class:`~repro.serve.pool.JobRecord` (plain jobs)
    record: object | None = None
    #: the worker's reply dict (session batches, pongs)
    payload: dict | None = None
    error: str | None = None
    retries: int = 0
    #: whether this handle holds an admission reservation (pings and
    #: session closes do not; releasing one would corrupt the ledger)
    admitted: bool = True
    #: answered from a recorded outcome (``Idempotency-Key`` repeat or
    #: a post-recovery lookup) — nothing executed for this handle
    replay: bool = False
    submitted_at: float = 0.0
    started_at: float | None = None
    done_at: float | None = None
    #: the sequence number minted for this handle (None when the id was
    #: recovered from the journal and the seq lives inside it)
    _seq: int | None = field(default=None, repr=False)
    _done: threading.Event = field(default_factory=threading.Event,
                                   repr=False)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def latency_s(self) -> float:
        """Submit-to-done seconds (NaN until resolved)."""
        if self.done_at is None:
            return float("nan")
        return self.done_at - self.submitted_at

    def wait(self, timeout: float | None = None) -> "JobHandle":
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"{self.job_id} not done after {timeout}s "
                f"(status {self.status!r})")
        return self

    def digest(self) -> str | None:
        """The result digest, whatever kind of work this was."""
        if self.record is not None and self.record.result is not None:
            return self.record.result.digest
        if self.payload is not None:
            result = self.payload.get("result")
            if result:
                return result.get("digest")
        return None

    def to_dict(self) -> dict:
        d = {"job_id": self.job_id, "tenant": self.tenant,
             "kind": self.kind, "name": self.name, "slot": self.slot,
             "status": self.status, "retries": self.retries,
             "digest": self.digest(), "error": self.error}
        if self.replay:
            d["idempotent"] = True
        if self.done_at is not None:
            d["latency_s"] = self.latency_s
        record = self.record
        if record is not None:
            d["attempts"] = record.attempts
            d["resumed_round"] = record.resumed_round
            d["degraded"] = record.degraded
            d["failures"] = list(record.failures)
            if record.result is not None:
                d["summary"] = dict(record.result.summary)
        if self.payload is not None:
            d["batch"] = self.payload.get("result")
            d["replayed"] = self.payload.get("replayed", False)
        return d


class Gateway:
    """Sharded, quota-guarded serving over prespawned warm workers."""

    def __init__(self, config: GatewayConfig | dict | None = None, *,
                 tracer=None) -> None:
        if config is None:
            config = GatewayConfig()
        elif isinstance(config, dict):
            config = GatewayConfig.from_dict(config)
        self.config = config
        self.bus = EventBus()
        self.tracer = tracer
        if tracer is not None:
            wire_gauges(self.bus, tracer)
        self.admission = AdmissionController(
            config.tenants, default=config.default_quota,
            max_total_pending=config.max_total_pending)
        self.pool: WorkerPool | None = None
        self.ring = HashRing(replicas=config.replicas)
        self._handles: dict[str, JobHandle] = {}
        self._sessions: dict[tuple[str, str], dict] = {}
        self.journal: Journal | None = None
        #: job_id -> recorded ``done`` payload, oldest first (bounded
        #: by ``config.max_done_handles``)
        self._completed: OrderedDict[str, dict] = OrderedDict()
        #: (tenant, idempotency key) -> job_id
        self._idem: dict[tuple[str, str], str] = {}
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._ready = threading.Event()
        self._closing = threading.Event()
        self._collector: threading.Thread | None = None
        self._tmp_spool: tempfile.TemporaryDirectory | None = None

    # ------------------------------------------------------------- #
    # Lifecycle                                                      #
    # ------------------------------------------------------------- #

    def start(self, timeout: float = 120.0) -> "Gateway":
        """Prespawn the pool, build the ring, start the collector, and
        block until every worker finished warm-up."""
        if self.pool is not None:
            return self
        checkpoint_dir = self.config.checkpoint_dir
        if checkpoint_dir is None:
            self._tmp_spool = tempfile.TemporaryDirectory(
                prefix="repro-gateway-spool-")
            checkpoint_dir = self._tmp_spool.name
        self.checkpoint_dir = str(Path(checkpoint_dir))
        self.pool = WorkerPool(self.config.workers,
                               checkpoint_dir=self.checkpoint_dir,
                               start_method=self.config.start_method)
        for node in self.pool.nodes():
            self.ring.add(node)
        self._collector = threading.Thread(target=self._collect,
                                           name="gateway-collector",
                                           daemon=True)
        self._collector.start()
        if not self._ready.wait(timeout):
            self.stop()
            raise TimeoutError(f"workers not warm after {timeout}s")
        if self.config.journal_dir is not None:
            fault = (DiskFaultPlan.from_dict(self.config.journal_fault)
                     if self.config.journal_fault else None)
            self.journal = Journal(self.config.journal_dir,
                                   fault_plan=fault)
            replay = self.journal.open()
            if replay.records:
                self._recover(recover_state(replay.records,
                                            torn_tail=replay.torn_tail))
        return self

    def _recover(self, state: RecoveredState) -> None:
        """Apply a :class:`~repro.gateway.recovery.RecoveredState`:
        resume the sequence, seed the idempotency/result tables, and
        requeue every non-completed submission in admission order.
        Requeued work re-enters admission through
        :meth:`~repro.gateway.admission.AdmissionController.readmit`
        (quota checks were passed before the crash; recovery must not
        re-judge them)."""
        self._seq = itertools.count(state.next_seq)
        with self._lock:
            self._completed = OrderedDict(state.completed)
            self._idem = dict(state.idempotency)
            for skey, sess in state.sessions.items():
                self._sessions[skey] = {"spec": sess["spec"],
                                        "next_index": sess["next_index"]}
        requeued = 0
        for rec in state.pending_jobs:
            cost = float(rec.get("cost", 0.0))
            self.admission.readmit(rec["tenant"], cost)
            slot = self.pool.slot_of(self.ring.place(shard_key(
                rec["tenant"], rec.get("shard") or rec["name"])))
            handle = self._register(rec["tenant"], "job", rec["name"],
                                    slot, cost, job_id=rec["job_id"])
            self.pool.send(slot, {
                "type": "job", "job_id": handle.job_id,
                "tenant": rec["tenant"], "spec": rec["spec"],
                "submitted_at": handle.submitted_at})
            self._journal_append({"t": "dispatch",
                                  "job_id": handle.job_id, "slot": slot,
                                  "recovered": True})
            requeued += 1
        # Open sessions replay their whole journaled batch stream:
        # already-applied batches answer idempotently from the resumed
        # checkpoint's recorded results, lost ones (including a newest
        # checkpoint version that was torn and quarantined) re-apply
        # deterministically — no gap, no double effect.
        for skey, recs in state.session_batches.items():
            if skey not in self._sessions:
                continue
            for rec in recs:
                cost = float(rec.get("cost", 0.0))
                self.admission.readmit(rec["tenant"], cost)
                slot = self.pool.slot_of(
                    self.ring.place(shard_key(*skey)))
                handle = self._register(rec["tenant"], "session_batch",
                                        rec["name"], slot, cost,
                                        job_id=rec["job_id"])
                self.pool.send(slot, {
                    "type": "session_batch", "job_id": handle.job_id,
                    "tenant": rec["tenant"], "session": rec["session"],
                    "ops": rec["ops"],
                    "batch_index": int(rec["batch_index"]),
                    "submitted_at": handle.submitted_at})
                self._journal_append({"t": "dispatch",
                                      "job_id": handle.job_id,
                                      "slot": slot, "recovered": True})
                requeued += 1
        self.bus.publish("recovered", records=state.records,
                         requeued=requeued,
                         completed=len(state.completed),
                         sessions=len(state.sessions),
                         torn_tail=state.torn_tail)
        self._gauge_depth()

    def __enter__(self) -> "Gateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def drain(self, timeout: float = 60.0) -> None:
        """Refuse new work, wait for the backlog, stop workers cleanly."""
        self.admission.drain()
        deadline = time.monotonic() + timeout
        while self.pool.outstanding_total() > 0:
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"{self.pool.outstanding_total()} jobs still "
                    f"outstanding after {timeout}s drain budget")
            time.sleep(0.02)
        self.pool.drain(timeout=max(1.0, deadline - time.monotonic()))
        self.bus.publish("drained", workers=self.pool.size)
        self._shutdown_collector()

    def stop(self) -> None:
        """Hard stop: terminate workers, join the collector."""
        if self.pool is not None:
            self.pool.stop()
        self._shutdown_collector()
        if self.journal is not None:
            self.journal.close()
        if self._tmp_spool is not None:
            self._tmp_spool.cleanup()
            self._tmp_spool = None

    def _shutdown_collector(self) -> None:
        self._closing.set()
        if self._collector is not None and self._collector.is_alive():
            self._collector.join(timeout=5.0)

    # ------------------------------------------------------------- #
    # Submission                                                     #
    # ------------------------------------------------------------- #

    def _admit(self, tenant: str, cost: float, *, name: str):
        try:
            self.admission.admit(tenant, cost)
        except Exception as exc:
            self.bus.publish("rejected", tenant=tenant, name=name,
                             reason=getattr(exc, "reason", "rejected"))
            raise

    def _register(self, tenant: str, kind: str, name: str, slot: int,
                  cost: float, *, admitted: bool = True,
                  job_id: str | None = None) -> JobHandle:
        seq = None
        if job_id is None:
            seq = next(self._seq)
            job_id = f"{tenant}:{name}:{seq}"
        handle = JobHandle(job_id=job_id, tenant=tenant, kind=kind,
                          name=name, slot=slot, cost=cost,
                          admitted=admitted,
                          submitted_at=time.monotonic())
        handle._seq = seq
        with self._lock:
            self._handles[job_id] = handle
        return handle

    # -- write-ahead journal --------------------------------------- #

    def _journal_append(self, rec: dict, *, critical: bool = False) -> None:
        """Append ``rec``; non-critical failures are absorbed (the
        journal repairs itself before the next append), critical ones
        (admit records — the durability promise itself) surface as a
        retryable :class:`~repro.errors.Overloaded`."""
        if self.journal is None:
            return
        try:
            self.journal.append(rec)
        except (StorageFault, FaultInjected, OSError) as exc:
            if critical:
                raise Overloaded(
                    f"journal append failed; submission not durable "
                    f"({type(exc).__name__}: {exc})",
                    tenant=rec.get("tenant", "?"),
                    reason="journal") from exc
        else:
            if self.tracer is not None:
                self.tracer.on_gauge("gateway.journal.records",
                                     self.journal.records_written)
                self.tracer.on_gauge("gateway.journal.bytes",
                                     self.journal.bytes_written)

    def _journal_admit(self, handle: JobHandle, *, key: str | None,
                       **payload) -> None:
        rec = {"t": "admit", "kind": handle.kind,
               "job_id": handle.job_id, "tenant": handle.tenant,
               "name": handle.name,
               "seq": handle._seq if handle._seq is not None
               else int(handle.job_id.rsplit(":", 1)[1]),
               "cost": handle.cost, **payload}
        if key is not None:
            rec["key"] = key
        self._journal_append(rec, critical=True)

    # -- idempotency ------------------------------------------------ #

    def _idempotent(self, tenant: str,
                    key: str | None) -> JobHandle | None:
        """The previously recorded handle for ``(tenant, key)``, live
        or synthesized from its journaled outcome; ``None`` on a fresh
        key."""
        if key is None:
            return None
        with self._lock:
            job_id = self._idem.get((tenant, key))
            if job_id is None:
                return None
            handle = self._handles.get(job_id)
            done = self._completed.get(job_id)
        if handle is None and done is None:
            return None
        if handle is None:
            handle = self._synthesize(done)
        self.bus.publish("replayed", tenant=tenant, job_id=job_id,
                         key=key, status=handle.status)
        return handle

    def _synthesize(self, done: dict) -> JobHandle:
        """A resolved :class:`JobHandle` rebuilt from a recorded
        ``done`` payload (journal recovery, or after eviction)."""
        handle = JobHandle(
            job_id=done["job_id"], tenant=done.get("tenant", "?"),
            kind=done.get("kind", "job"), name=done.get("name", "?"),
            slot=int(done.get("slot", -1)),
            status=done.get("status", "ok"), admitted=False, replay=True)
        handle.error = done.get("error")
        handle.retries = int(done.get("retries", 0))
        if done.get("batch") is not None:
            handle.payload = {"result": done["batch"],
                              "replayed": True}
        elif done.get("digest") is not None:
            handle.payload = {"result": {"digest": done["digest"],
                                         "summary": done.get("summary")}}
        handle._done.set()
        return handle

    def _record_done(self, handle: JobHandle) -> None:
        """Journal the outcome and retain it for idempotency answers,
        evicting the oldest resolved handles beyond the bound."""
        done = handle.to_dict()
        self._journal_append({"t": "done", "job_id": handle.job_id,
                              "tenant": handle.tenant,
                              "status": handle.status, "result": done})
        if handle.kind == "ping":
            return
        with self._lock:
            self._completed[handle.job_id] = done
            evicted = set()
            while len(self._completed) > self.config.max_done_handles:
                job_id, _ = self._completed.popitem(last=False)
                evicted.add(job_id)
            for job_id in evicted:
                self._handles.pop(job_id, None)
            if evicted:
                for k in [k for k, v in self._idem.items()
                          if v in evicted]:
                    del self._idem[k]

    def submit(self, tenant: str, spec: JobSpec | dict, *,
               key: str | None = None,
               idempotency_key: str | None = None) -> JobHandle:
        """Admit and dispatch one job; returns immediately.

        ``key`` overrides the sharding key (default: the spec name), so
        related jobs can be co-located deliberately.

        ``idempotency_key`` makes the submission safe to repeat: a
        repeat (same tenant, same key — live, completed, or recovered
        from the journal after a restart) returns the original
        submission's handle or its recorded outcome instead of
        executing again.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        if self.pool is None:
            raise Overloaded("gateway is not started", tenant=tenant,
                             reason="draining")
        existing = self._idempotent(tenant, idempotency_key)
        if existing is not None:
            return existing
        cost = estimate_cost(spec)
        self._admit(tenant, cost, name=spec.name)
        slot = self.pool.slot_of(
            self.ring.place(shard_key(tenant, key or spec.name)))
        handle = self._register(tenant, "job", spec.name, slot, cost)
        try:
            self._journal_admit(handle, key=idempotency_key,
                                spec=spec.to_dict(), shard=key)
        except Overloaded:
            with self._lock:
                self._handles.pop(handle.job_id, None)
            self.admission.release(tenant, cost)
            raise
        if idempotency_key is not None:
            with self._lock:
                self._idem[(tenant, idempotency_key)] = handle.job_id
        self.pool.send(slot, {"type": "job", "job_id": handle.job_id,
                              "tenant": tenant, "spec": spec.to_dict(),
                              "submitted_at": handle.submitted_at})
        self._journal_append({"t": "dispatch", "job_id": handle.job_id,
                              "slot": slot})
        self.bus.publish("submitted", tenant=tenant, job_id=handle.job_id,
                         name=spec.name, slot=slot, kind="job")
        self._gauge_depth()
        return handle

    def submit_batch(self, tenant: str, specs) -> list[JobHandle]:
        """Admit and dispatch a list of jobs (all-or-each: a rejection
        midway leaves earlier submissions running)."""
        return [self.submit(tenant, spec) for spec in specs]

    def session_batch(self, tenant: str, session: SessionSpec | dict,
                      ops, *, idempotency_key: str | None = None
                      ) -> JobHandle:
        """Stream one mutation batch into a sticky warm session.

        ``session`` is the session's *identity* — its
        :class:`~repro.sessions.SessionSpec` fields minus any batch
        stream (batches ride in ``ops``, one call per batch, in
        order).  The first call cold-opens the session on its ring
        slot; later calls must present the same identity.

        ``idempotency_key`` works as in :meth:`submit`: repeating a
        batch submission under the same key returns the recorded batch
        result (and consumes no stream index) instead of re-applying.
        """
        if isinstance(session, dict):
            session = SessionSpec.from_dict(session)
        if session.batches:
            # The stream arrives call-by-call; a spec-embedded batch
            # list would make the identity drift batch to batch.
            session = SessionSpec.from_dict(
                {**session.to_dict(), "batches": []})
        if self.pool is None:
            raise Overloaded("gateway is not started", tenant=tenant,
                             reason="draining")
        existing = self._idempotent(tenant, idempotency_key)
        if existing is not None:
            return existing
        base = JobSpec(name=session.name, algorithm=session.algorithm,
                       params=session.params, strategy=session.strategy,
                       seed=session.seed)
        cost = 0.25 * estimate_cost(base)
        self._admit(tenant, cost, name=session.name)
        skey = (tenant, session.name)
        with self._lock:
            state = self._sessions.get(skey)
            if state is None:
                state = {"spec": session.to_dict(), "next_index": 1}
                self._sessions[skey] = state
            elif state["spec"] != session.to_dict():
                msg = (f"session {session.name!r} of tenant {tenant!r} "
                       f"was opened with a different spec; close it "
                       f"before reusing the name")
                self.admission.release(tenant, cost)
                raise ValueError(msg)
            index = state["next_index"]
            state["next_index"] += 1
        slot = self.pool.slot_of(
            self.ring.place(shard_key(tenant, session.name)))
        handle = self._register(tenant, "session_batch", session.name,
                                slot, cost)
        ops = [dict(op) for op in ops]
        try:
            self._journal_admit(handle, key=idempotency_key,
                                session=state["spec"], ops=ops,
                                batch_index=index)
        except Overloaded:
            with self._lock:
                self._handles.pop(handle.job_id, None)
                if state["next_index"] == index + 1:
                    state["next_index"] = index    # give the slot back
            self.admission.release(tenant, cost)
            raise
        if idempotency_key is not None:
            with self._lock:
                self._idem[(tenant, idempotency_key)] = handle.job_id
        self.pool.send(slot, {
            "type": "session_batch", "job_id": handle.job_id,
            "tenant": tenant, "session": state["spec"],
            "ops": ops, "batch_index": index,
            "submitted_at": handle.submitted_at})
        self._journal_append({"t": "dispatch", "job_id": handle.job_id,
                              "slot": slot})
        self.bus.publish("submitted", tenant=tenant, job_id=handle.job_id,
                         name=session.name, slot=slot, kind="session_batch",
                         batch=index)
        self._gauge_depth()
        return handle

    def close_session(self, tenant: str, name: str) -> JobHandle:
        """Discard a session's warm state and spool history."""
        skey = (tenant, name)
        with self._lock:
            self._sessions.pop(skey, None)
        self._journal_append({"t": "session_close", "tenant": tenant,
                              "name": name})
        slot = self.pool.slot_of(self.ring.place(shard_key(tenant, name)))
        handle = self._register(tenant, "session_close", name, slot, 0.0,
                                admitted=False)
        self.pool.send(slot, {"type": "session_close",
                              "job_id": handle.job_id, "tenant": tenant,
                              "session": name})
        return handle

    # ------------------------------------------------------------- #
    # Introspection / health                                         #
    # ------------------------------------------------------------- #

    def handle(self, job_id: str) -> JobHandle | None:
        with self._lock:
            handle = self._handles.get(job_id)
            done = self._completed.get(job_id) if handle is None else None
        if handle is None and done is not None:
            # Evicted or recovered-from-journal: resurrect the recorded
            # outcome as a resolved handle.
            return self._synthesize(done)
        return handle

    def ping(self, timeout: float = 10.0) -> dict[int, dict]:
        """Health-check every slot; returns ``slot -> pong`` facts.

        A slot that does not answer in time is reported with
        ``{"ok": False}`` — its worker is wedged or dead (the collector
        will notice death on its own and replace it).
        """
        handles = {}
        for slot, worker in self.pool.workers.items():
            handle = self._register("_health", "ping", worker.name, slot,
                                    0.0, admitted=False)
            self.pool.send(slot, {"type": "ping",
                                  "job_id": handle.job_id})
            handles[slot] = handle
        out = {}
        deadline = time.monotonic() + timeout
        for slot, handle in handles.items():
            try:
                handle.wait(max(0.01, deadline - time.monotonic()))
                out[slot] = {"ok": True, **(handle.payload or {})}
            except TimeoutError:
                out[slot] = {"ok": False}
        return out

    def kill_worker(self, slot: int) -> None:
        """Chaos hook: SIGKILL one warm worker.  The collector detects
        the death, replaces the slot deterministically, and requeues its
        unresolved work."""
        self.pool.kill(slot)

    def stats(self) -> dict:
        pool = self.pool
        journal = (self.journal.stats() if self.journal is not None
                   else None)
        return {
            "journal": journal,
            "workers": {
                "size": pool.size if pool else 0,
                "alive": sum(w.alive for w in pool.workers.values())
                if pool else 0,
                "incarnations": {w.node: w.incarnation
                                 for w in pool.workers.values()}
                if pool else {},
            },
            "ring": {"nodes": self.ring.nodes(),
                     "replicas": self.ring.replicas},
            "admission": self.admission.snapshot(),
            "events": self.bus.snapshot(),
            "sessions": sorted(f"{t}/{s}" for t, s in self._sessions),
        }

    def _gauge_depth(self) -> None:
        if self.tracer is not None:
            self.tracer.on_gauge("gateway.pending",
                                 self.admission.pending())

    # ------------------------------------------------------------- #
    # Collector                                                      #
    # ------------------------------------------------------------- #

    def _collect(self) -> None:
        while not self._closing.is_set():
            msg = self.pool.poll(timeout=0.05)
            if msg is not None:
                self._dispatch(msg)
            for slot in self.pool.dead_slots():
                self._heal(slot)

    def _dispatch(self, msg: dict) -> None:
        mtype = msg["type"]
        if mtype == "ready":
            self.bus.publish("worker_spawned", slot=msg["slot"],
                             incarnation=msg["incarnation"],
                             warm_s=msg.get("warm_s", 0.0))
            if self.pool.all_ready():
                self._ready.set()
            return
        if mtype == "stopped":
            return
        handle = self.handle(msg.get("job_id", ""))
        if handle is None or handle.done:
            # A stale duplicate (e.g. the dead worker finished a job we
            # requeued, and the replacement finished it again) — the
            # first resolution won; drop the echo.
            if msg.get("job_id"):
                self.pool.resolve(msg["slot"], msg["job_id"])
            return
        if mtype == "started":
            handle.status = "running"
            handle.started_at = time.monotonic()
            if handle.admitted:
                self.admission.started(handle.tenant)
            self.bus.publish("started", tenant=handle.tenant,
                             job_id=handle.job_id, slot=msg["slot"])
            return
        if mtype == "pong":
            handle.payload = dict(msg)
            self._resolve(handle, msg["slot"], "ok")
            return
        if mtype == "done":
            if msg.get("kind") == "job":
                record = msg["record"]
                handle.record = record
                if record.degraded:
                    self.bus.publish("degraded", tenant=handle.tenant,
                                     job_id=handle.job_id,
                                     events=len(record.resilience_events))
                self._resolve(handle, msg["slot"],
                              "ok" if record.ok else "failed")
            elif msg.get("kind") == "session_batch":
                handle.payload = {k: v for k, v in msg.items()
                                  if k not in ("type", "kind", "slot",
                                               "job_id")}
                if msg.get("checkpointed"):
                    self._journal_append(
                        {"t": "checkpoint", "job_id": handle.job_id,
                         "tenant": handle.tenant,
                         "name": msg.get("session"),
                         "applied": msg.get("applied_batches")})
                    self.bus.publish("checkpointed", tenant=handle.tenant,
                                     job_id=handle.job_id,
                                     session=msg.get("session"),
                                     batch=msg.get("applied_batches"))
                self._resolve(handle, msg["slot"], "ok")
            else:                                   # session_close
                self._resolve(handle, msg["slot"], "ok")
            return
        if mtype == "error":
            handle.error = msg.get("error", "unknown worker error")
            self._resolve(handle, msg["slot"], "failed")

    def _resolve(self, handle: JobHandle, slot: int, status: str) -> None:
        self.pool.resolve(slot, handle.job_id)
        handle.status = status
        handle.done_at = time.monotonic()
        # WAL discipline: the outcome is journaled (and the admission
        # reservation freed) *before* the waiter wakes — a client that
        # observed completion must find it durable, and must find the
        # ledger already settled.
        if handle.kind != "ping":
            self._record_done(handle)
        if handle.admitted:
            self.admission.release(handle.tenant, handle.cost)
        handle._done.set()
        if handle.kind != "ping":
            self.bus.publish("done" if status == "ok" else "failed",
                             tenant=handle.tenant, job_id=handle.job_id,
                             slot=slot, latency_s=handle.latency_s)
        self._gauge_depth()
        if self.tracer is not None and handle.kind != "ping":
            self.tracer.on_gauge("gateway.latency_s", handle.latency_s)

    def _heal(self, slot: int) -> None:
        dead = self.pool.workers[slot]
        self.bus.publish("worker_exit", slot=slot,
                         incarnation=dead.incarnation, node=dead.node)
        replacement, orphans = self.pool.replace(slot)
        self.bus.publish("worker_replaced", slot=slot,
                         incarnation=replacement.incarnation,
                         node=replacement.node)
        for msg in orphans:
            handle = self.handle(msg.get("job_id", ""))
            if handle is None or handle.done:
                continue
            if msg.get("type") == "ping":
                handle.error = "worker died before answering the ping"
                self._resolve(handle, slot, "failed")
                continue
            if handle.status == "running" and handle.admitted:
                self.admission.requeued(handle.tenant)
            handle.status = "queued"
            handle.retries += 1
            self.pool.send(slot, msg)
            self._journal_append({"t": "dispatch",
                                  "job_id": handle.job_id, "slot": slot,
                                  "requeued": True})
            self.bus.publish("retried", tenant=handle.tenant,
                             job_id=handle.job_id, slot=slot,
                             incarnation=replacement.incarnation)
