"""Consistent-hash sharding of sessions and jobs onto warm workers.

The gateway's whole value is *stickiness*: consecutive batches of one
incremental session must land on the warm worker that already holds its
:class:`repro.sessions.Session` state (and whose checkpoint spool has
its versioned history).  A consistent-hash ring gives that placement a
shape that survives pool churn:

* every worker *slot* contributes ``replicas`` virtual points to a
  64-bit ring, hashed from the slot's stable node name (``"w3"``), not
  from the process identity — so a crashed worker's deterministic
  replacement (same slot, next incarnation) occupies exactly the same
  arc and inherits its predecessor's keys;
* a key ``(tenant, session_id)`` is hashed once and owned by the first
  point clockwise from it; removing a node (a drained slot) moves only
  that node's keys, never reshuffles the rest;
* the hash is :func:`hashlib.blake2b` over the key bytes — stable
  across processes and Python versions (``hash()`` is salted and would
  silently break placement determinism across restarts).

Builds are order-independent: the ring is a sorted list of
``(hash, node)`` points, so the same node set always yields the same
ring, whatever order nodes were added in — that is the "deterministic
ring rebuild" the replacement path relies on.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

__all__ = ["HashRing", "stable_hash", "shard_key"]


def stable_hash(key: str) -> int:
    """A process-stable 64-bit hash of ``key`` (blake2b, not ``hash``)."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def shard_key(tenant: str, session_id: str) -> str:
    """The canonical placement key for one tenant's session or job."""
    return f"{tenant}/{session_id}"


class HashRing:
    """A consistent-hash ring over named nodes.

    ``replicas`` virtual points per node smooth the load split (with
    one point per node, a two-node ring routinely lands 80/20).
    """

    def __init__(self, nodes=(), *, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self._nodes: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Add ``node``'s virtual points (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        self._points.extend(
            (stable_hash(f"{node}#{r}"), node) for r in range(self.replicas))
        # Sorted on (hash, node): ties — vanishingly rare but possible —
        # break on the node name, keeping rebuilds order-independent.
        self._points.sort()

    def remove(self, node: str) -> None:
        """Drop ``node``; only its keys move to their next-clockwise
        owners (the consistent-hashing contract)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if p[1] != node]

    def place(self, key: str) -> str:
        """The node owning ``key``: first ring point clockwise from it."""
        if not self._points:
            raise ValueError("cannot place a key on an empty ring")
        h = stable_hash(key)
        i = bisect_right(self._points, (h, "￿"))
        if i == len(self._points):
            i = 0                       # wrap past the top of the ring
        return self._points[i][1]

    def spread(self, keys) -> dict[str, int]:
        """How many of ``keys`` each node owns (load-split diagnostic)."""
        out = {node: 0 for node in self._nodes}
        for key in keys:
            out[self.place(key)] += 1
        return out
