"""Crash-restart recovery: fold a journal back into gateway state.

:func:`recover_state` is a pure fold over the record stream
:func:`repro.gateway.journal.read_journal` replays — no I/O, no
gateway, so the recovery semantics are testable in isolation.  The
gateway applies the result inside :meth:`repro.gateway.Gateway.start`:

* the submission **sequence** resumes past every journaled id, so new
  job ids never collide with recovered ones;
* every admitted-but-not-completed **plain job** is requeued in its
  original admission order, with its original id and spec —
  re-execution is deterministic, so the digest a client eventually
  reads is byte-identical to an uninterrupted run;
* for every still-open **session**, *all* journaled batches are
  requeued in index order (not just the unfinished tail): batches the
  worker already applied before the crash answer idempotently from the
  resumed checkpoint's recorded results, and batches whose application
  died with the worker — or whose newest checkpoint version was torn
  and quarantined — are re-applied deterministically.  Either way the
  stream continues with no gap and no double-application of effects;
* **completed** submissions are not re-run: their recorded ``done``
  payloads seed the idempotency table, so a client repeating a
  ``Idempotency-Key`` after the restart gets the recorded result back
  without executing anything;
* a ``session_close`` record drops the session and its batch history —
  closed sessions do not resurrect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RecoveredState", "recover_state"]


@dataclass
class RecoveredState:
    """The fold of one journal, ready to apply to a fresh gateway."""

    #: first sequence number new submissions may use
    next_seq: int = 1
    #: admit records of plain jobs with no ``done`` yet, admission order
    pending_jobs: list = field(default_factory=list)
    #: job_id -> recorded ``done`` payload (the handle's ``to_dict``)
    completed: dict = field(default_factory=dict)
    #: (tenant, idempotency_key) -> job_id
    idempotency: dict = field(default_factory=dict)
    #: (tenant, session_name) -> {"spec": ..., "next_index": int}
    sessions: dict = field(default_factory=dict)
    #: (tenant, session_name) -> every batch admit record, index order
    session_batches: dict = field(default_factory=dict)
    #: total records folded (including the header)
    records: int = 0
    #: the journal ended in a torn tail (crash mid-append)
    torn_tail: bool = False


def recover_state(records, *, torn_tail: bool = False) -> RecoveredState:
    """Fold journal ``records`` (in file order) into a
    :class:`RecoveredState`."""
    state = RecoveredState(torn_tail=torn_tail)
    jobs: dict[str, dict] = {}          # job_id -> admit rec, insert order
    for rec in records:
        state.records += 1
        t = rec.get("t")
        if t == "admit":
            state.next_seq = max(state.next_seq, int(rec["seq"]) + 1)
            key = rec.get("key")
            if key is not None:
                state.idempotency[(rec["tenant"], key)] = rec["job_id"]
            if rec["kind"] == "session_batch":
                skey = (rec["tenant"], rec["name"])
                state.session_batches.setdefault(skey, []).append(rec)
                sess = state.sessions.setdefault(
                    skey, {"spec": rec["session"], "next_index": 1})
                sess["next_index"] = max(sess["next_index"],
                                         int(rec["batch_index"]) + 1)
            else:
                jobs[rec["job_id"]] = rec
        elif t == "done":
            jobs.pop(rec["job_id"], None)
            state.completed[rec["job_id"]] = rec.get("result", {})
        elif t == "session_close":
            skey = (rec["tenant"], rec["name"])
            state.sessions.pop(skey, None)
            state.session_batches.pop(skey, None)
        # "header", "dispatch" and "checkpoint" records carry no state
        # the fold needs: dispatch targets are recomputed from the ring
        # (the pool is rebuilt anyway) and checkpoints live in the spool.
    state.pending_jobs = list(jobs.values())
    # Batches of sessions that were closed before the crash stay dead.
    for skey in list(state.session_batches):
        if skey not in state.sessions:
            del state.session_batches[skey]
    return state
