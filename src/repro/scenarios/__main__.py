"""CLI for the scenario corpus: ``python -m repro.scenarios``.

Subcommands::

    record <name> <jobs.json> [-o DIR]   record a batch file as a scenario
    record-corpus [DIR]                  re-record the built-in corpus
    replay <paths...>                    replay, print per-job diffs
    verify <paths...> [--update-golden]  replay + gate (CI entry point)

``replay`` and ``verify`` are the same engine; ``verify`` is the CI
spelling (quiet on success, ``--report FILE`` for the machine-readable
summary).  Exit codes: 0 all goldens reproduced, 1 mismatch or failed
scenario, 2 usage error or corrupt/missing scenario file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..serve.jobs import JobSpec
from .corpus import DEFAULT_CORPUS_DIR, record_corpus
from .format import load_scenario, save_scenario
from .record import record_scenario
from .replay import verify_paths


def _load_specs(path: str) -> list[JobSpec]:
    doc = json.loads(Path(path).read_text())
    jobs = doc["jobs"] if isinstance(doc, dict) else doc
    return [JobSpec.from_dict(j) for j in jobs]


def _print_corpus(corpus, *, verbose: bool) -> None:
    for path, message in corpus.errors:
        print(f"ERROR  {path}: {message}")
    for report in corpus.reports:
        mark = "ok" if report.ok else "FAIL"
        if report.updated:
            mark = "updated"
        line = (f"{mark:8s} {report.scenario:24s} "
                f"{len(report.jobs)} jobs  {report.wall_s:.2f}s")
        if report.ok and not verbose and not report.updated:
            print(line)
            continue
        print(line)
        for job in report.jobs:
            if job.ok and not verbose:
                continue
            status = "ok" if job.ok else "MISMATCH"
            print(f"    {status:8s} {job.name} [{job.algorithm}]")
            for m in job.mismatches:
                print(f"        {m}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="record/replay scenario corpus for the serving stack")
    sub = parser.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser("record", help="record a jobs file as a scenario")
    p_rec.add_argument("name", help="scenario name (also the file stem)")
    p_rec.add_argument("jobs", help="serve batch file (see examples/)")
    p_rec.add_argument("-o", "--outdir", default=".",
                       help="directory for <name>.json (default: .)")
    p_rec.add_argument("--description", default="")
    p_rec.add_argument("--policy", default="fifo")
    p_rec.add_argument("--workers", type=int, default=0)

    p_corpus = sub.add_parser(
        "record-corpus", help="re-record the built-in corpus definitions")
    p_corpus.add_argument("outdir", nargs="?",
                          default=str(DEFAULT_CORPUS_DIR))
    p_corpus.add_argument("--workers", type=int, default=0)

    for cmd in ("replay", "verify"):
        p = sub.add_parser(cmd, help=f"{cmd} recorded scenarios")
        p.add_argument("paths", nargs="+",
                       help="scenario files or directories of them")
        p.add_argument("--workers", type=int, default=0)
        p.add_argument("--update-golden", action="store_true",
                       help="accept replayed outcomes as the new goldens")
        p.add_argument("--report", default=None,
                       help="write the machine-readable report JSON here")
        p.add_argument("-v", "--verbose", action="store_true",
                       help="print per-job lines even on success")

    args = parser.parse_args(argv)

    if args.command == "record":
        try:
            specs = _load_specs(args.jobs)
        except (OSError, json.JSONDecodeError, KeyError, TypeError) as exc:
            print(f"error: cannot read jobs file {args.jobs}: {exc}",
                  file=sys.stderr)
            return 2
        scenario = record_scenario(args.name, specs,
                                   description=args.description,
                                   policy=args.policy, workers=args.workers)
        path = save_scenario(Path(args.outdir) / f"{args.name}.json",
                             scenario)
        print(f"recorded {len(specs)} jobs -> {path}")
        return 0

    if args.command == "record-corpus":
        paths = record_corpus(args.outdir, workers=args.workers)
        for path in paths:
            scenario = load_scenario(path)
            print(f"recorded {scenario.name:24s} "
                  f"{len(scenario.specs)} jobs -> {path}")
        return 0

    # replay / verify
    corpus = verify_paths(args.paths, workers=args.workers,
                          update=args.update_golden)
    _print_corpus(corpus, verbose=args.verbose)
    if args.report:
        Path(args.report).write_text(
            json.dumps(corpus.to_dict(), indent=2, sort_keys=True) + "\n")
    total = len(corpus.reports)
    bad = [r for r in corpus.reports if not r.ok and not r.updated]
    print(f"{total - len(bad)}/{total} scenarios reproduced"
          + (f", {len(corpus.errors)} unreadable" if corpus.errors else ""))
    if corpus.errors:
        return 2
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
