"""Replay: re-run a recorded scenario, diff against its goldens.

Replay is deliberately *not* a special execution mode — it runs the
specs through the same :class:`~repro.serve.scheduler.Scheduler`, pool,
fault injectors, and driver adapters as the original recording, inside
the same hermetic environment (:func:`~.record.scenario_environment`).
What replay adds is the **diff**: per job it compares status, result
digest, scalar summary, per-kernel op-counter totals, attempt count,
resume round, degradation flag, and the resilience-event log against
the goldens, and reports every mismatch as a human-readable string.

When a tracer is supplied, each scenario replays inside a
``scenario.replay`` span (with the per-job ``serve.job`` spans nested
under it), so a traced verification run shows *which* scenario the
modeled time went to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import CorruptScenario
from .format import (GoldenJob, Scenario, golden_from_record, load_scenario,
                     save_scenario, scenario_paths)
from .record import ScenarioRecorder, run_batch

__all__ = ["JobReplay", "ReplayReport", "CorpusReport", "compare_golden",
           "replay_scenario", "verify_paths"]

#: golden fields diffed on replay, in report order
_FIELDS = ("status", "digest", "summary", "counters", "attempts",
           "resumed_round", "degraded", "resilience_events", "failures")


def compare_golden(golden: GoldenJob, record) -> list[str]:
    """Every way ``record`` deviates from ``golden``, as readable strings
    (empty = byte-for-byte reproduction of the recorded outcome)."""
    fresh = golden_from_record(record)
    old, new = golden.to_dict(), fresh.to_dict()
    mismatches = []
    for key in _FIELDS:
        if old.get(key) != new.get(key):
            mismatches.append(
                f"{key}: recorded {_short(old.get(key))} "
                f"!= replayed {_short(new.get(key))}")
    return mismatches


def _short(value, limit: int = 64) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


@dataclass
class JobReplay:
    """One job's replay outcome."""

    name: str
    algorithm: str
    ok: bool
    mismatches: list = field(default_factory=list)
    golden: GoldenJob | None = None

    def to_dict(self) -> dict:
        return {"name": self.name, "algorithm": self.algorithm,
                "ok": self.ok, "mismatches": list(self.mismatches)}


@dataclass
class ReplayReport:
    """One scenario's replay outcome."""

    scenario: str
    jobs: list = field(default_factory=list)        # list[JobReplay]
    wall_s: float = 0.0
    path: str | None = None
    updated: bool = False

    @property
    def ok(self) -> bool:
        return all(j.ok for j in self.jobs)

    @property
    def failed(self) -> list:
        return [j for j in self.jobs if not j.ok]

    def to_dict(self) -> dict:
        return {"scenario": self.scenario, "path": self.path,
                "ok": self.ok, "wall_s": self.wall_s,
                "updated": self.updated,
                "jobs": [j.to_dict() for j in self.jobs]}


def replay_scenario(scenario: Scenario, *, workers: int = 0,
                    tracer=None) -> tuple[ReplayReport, ScenarioRecorder]:
    """Re-run ``scenario`` and diff every job against its golden.

    Returns the report plus the recorder (whose fresh records back
    ``--update-golden`` without a second run).  Jobs present in the
    specs but missing from the golden table — or vice versa — are
    mismatches, not errors: the report names them.
    """
    t0 = time.monotonic()
    if tracer is not None:
        tracer.on_span_begin("scenario.replay", cat="scenario",
                             scenario=scenario.name,
                             jobs=len(scenario.specs))
    recorder = run_batch(scenario.specs, policy=scenario.policy,
                         workers=workers, tracer=tracer)
    report = ReplayReport(scenario=scenario.name)
    seen = set()
    for record in recorder.records:
        name = record.spec.name
        seen.add(name)
        golden = scenario.golden.get(name)
        if golden is None:
            report.jobs.append(JobReplay(
                name=name, algorithm=record.spec.algorithm, ok=False,
                mismatches=["job has no recorded golden (re-record or "
                            "--update-golden)"]))
            continue
        mismatches = compare_golden(golden, record)
        report.jobs.append(JobReplay(
            name=name, algorithm=record.spec.algorithm,
            ok=not mismatches, mismatches=mismatches, golden=golden))
    for name in sorted(set(scenario.golden) - seen):
        report.jobs.append(JobReplay(
            name=name, algorithm="?", ok=False,
            mismatches=["golden has no matching job spec"]))
    report.wall_s = time.monotonic() - t0
    if tracer is not None:
        tracer.on_span_end()
    return report, recorder


@dataclass
class CorpusReport:
    """Replay outcomes for a set of scenario files."""

    reports: list = field(default_factory=list)     # list[ReplayReport]
    #: (path, message) for files that failed to load (corrupt/missing)
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors and all(r.ok for r in self.reports)

    def to_dict(self) -> dict:
        return {"ok": self.ok,
                "scenarios": [r.to_dict() for r in self.reports],
                "errors": [{"path": str(p), "error": m}
                           for p, m in self.errors]}


def verify_paths(targets, *, workers: int = 0, update: bool = False,
                 tracer=None) -> CorpusReport:
    """Replay every scenario file in ``targets`` (files or directories).

    With ``update=True``, scenarios whose replay mismatched are
    re-saved with the fresh goldens (canonical bytes, atomic write) and
    flagged ``updated`` in their report; their job mismatches still
    list what changed, so the caller can print the diff it just
    accepted.
    """
    corpus = CorpusReport()
    for path in scenario_paths(targets):
        try:
            scenario = load_scenario(path)
        except (CorruptScenario, FileNotFoundError) as exc:
            corpus.errors.append((Path(path), str(exc)))
            continue
        report, recorder = replay_scenario(scenario, workers=workers,
                                           tracer=tracer)
        report.path = str(path)
        if update and not report.ok:
            scenario.golden = recorder.goldens()
            save_scenario(path, scenario)
            report.updated = True
        corpus.reports.append(report)
    return corpus
