"""repro.scenarios — recorded-trace scenario corpus with deterministic
record/replay and golden digests.

The serving stack (:mod:`repro.serve`) can run any batch of the six
morph-algorithm drivers; this package makes such batches *regression
artifacts*.  ``record`` runs a batch hermetically and captures, per
job, the SHA-256 result digest, per-kernel op-counter totals, scalar
summary, attempt/resume/degradation history, and resilience-event log
into a canonical ``repro.scenario/1`` JSON file.  ``replay`` re-runs
the specs through the real scheduler and diffs every job against those
goldens; ``verify`` gates CI on the whole checked-in corpus
(``tests/scenarios/``).

Layers:

* :mod:`.format` — the versioned file format, canonical bytes,
  quarantine-on-corrupt loading;
* :mod:`.record` — the scheduler recorder hook and the hermetic
  record/replay environment (temp checkpoint spool, pinned empty
  tuning cache);
* :mod:`.replay` — golden diffing and corpus verification;
* :mod:`.corpus` — the built-in scenario definitions that live under
  ``tests/scenarios/``;
* :mod:`.__main__` — the ``python -m repro.scenarios`` CLI.
"""

from .corpus import (DEFAULT_CORPUS_DIR, corpus_definitions, record_corpus,
                     record_one)
from .format import (SCENARIO_SCHEMA, GoldenJob, Scenario, canonical_bytes,
                     golden_from_record, load_scenario, save_scenario,
                     scenario_paths)
from .record import (ScenarioRecorder, record_scenario, run_batch,
                     scenario_environment)
from .replay import (CorpusReport, JobReplay, ReplayReport, compare_golden,
                     replay_scenario, verify_paths)

__all__ = [
    "SCENARIO_SCHEMA", "GoldenJob", "Scenario", "canonical_bytes",
    "golden_from_record", "load_scenario", "save_scenario", "scenario_paths",
    "ScenarioRecorder", "record_scenario", "run_batch",
    "scenario_environment",
    "CorpusReport", "JobReplay", "ReplayReport", "compare_golden",
    "replay_scenario", "verify_paths",
    "DEFAULT_CORPUS_DIR", "corpus_definitions", "record_corpus",
    "record_one",
]
