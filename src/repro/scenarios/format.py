"""The versioned ``repro.scenario/1`` file format.

A *scenario* is one recorded serve batch, self-contained in a single
JSON file: the :class:`~repro.serve.jobs.JobSpec` list (algorithm,
input-generator params, strategy, seed, fault/resilience envelope,
mutation stream), the scheduling policy, and — the part that makes it a
regression artifact — the **golden** outcome of every job: its SHA-256
result digest, per-kernel op-counter totals, scalar summary, attempt
count, resume round, and resilience-event log.  Replay re-runs the
specs through the real scheduler and diffs against the goldens.

Serialization is *canonical* — sorted keys, fixed indent, trailing
newline, no timestamps or host facts — so recording the same scenario
twice produces byte-identical files, and a golden update shows up in
review as a minimal diff.

A file that cannot be parsed, or that carries an unknown schema tag, is
quarantined to ``<name>.corrupt`` and reported as the typed
:class:`repro.errors.CorruptScenario` (mirroring the tune cache and
checkpoint-store discipline: keep the evidence, raise loudly, never
guess).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from ..errors import CorruptScenario
from ..serve.jobs import JobSpec
from ..storage import atomic_write_bytes, quarantine

__all__ = ["SCENARIO_SCHEMA", "GoldenJob", "Scenario", "canonical_bytes",
           "save_scenario", "load_scenario", "golden_from_record",
           "scenario_paths"]

#: schema tag stamped into every scenario file (bump on format changes)
SCENARIO_SCHEMA = "repro.scenario/1"


def _plain(obj):
    """Recursively convert an object into plain JSON-able python data
    (numpy scalars to int/float, tuples to lists), so goldens compare
    equal across a JSON round trip."""
    if isinstance(obj, Mapping):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [_plain(v) for v in obj.tolist()]
    return obj


@dataclass
class GoldenJob:
    """The recorded outcome one job must reproduce on replay."""

    status: str                         # "ok" | "failed"
    digest: str | None
    summary: dict = field(default_factory=dict)
    #: kernel name -> the 9 ``KernelStats`` totals (launches, items,
    #: aborted, word_reads, word_writes, atomics, barriers,
    #: issued_lane_steps, useful_lane_steps)
    counters: dict = field(default_factory=dict)
    attempts: int = 1
    resumed_round: int = 0
    degraded: bool = False
    resilience_events: list = field(default_factory=list)
    #: messages of failed attempts (golden for jobs that legitimately
    #: exhaust retries; compared by exception type prefix only)
    failures: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return _plain({
            "status": self.status, "digest": self.digest,
            "summary": self.summary, "counters": self.counters,
            "attempts": self.attempts, "resumed_round": self.resumed_round,
            "degraded": self.degraded,
            "resilience_events": self.resilience_events,
            "failures": self.failures,
        })

    @classmethod
    def from_dict(cls, d: Mapping) -> "GoldenJob":
        return cls(status=d["status"], digest=d.get("digest"),
                   summary=dict(d.get("summary") or {}),
                   counters=dict(d.get("counters") or {}),
                   attempts=int(d.get("attempts", 1)),
                   resumed_round=int(d.get("resumed_round", 0)),
                   degraded=bool(d.get("degraded", False)),
                   resilience_events=list(d.get("resilience_events") or []),
                   failures=list(d.get("failures") or []))


def golden_from_record(record) -> GoldenJob:
    """Build a :class:`GoldenJob` from a finished
    :class:`repro.serve.pool.JobRecord` (wall-clock facts — queue wait,
    service seconds — are deliberately excluded: they are real time, not
    modeled time, and would never replay equal)."""
    result = record.result
    return GoldenJob(
        status=record.status,
        digest=result.digest if result is not None else None,
        summary=_plain(dict(result.summary)) if result is not None else {},
        counters=_plain(result.counter_totals()) if result is not None else {},
        attempts=record.attempts,
        resumed_round=record.resumed_round,
        degraded=record.degraded,
        resilience_events=_plain(list(record.resilience_events)),
        failures=[_failure_kind(f) for f in record.failures],
    )


def _failure_kind(message: str) -> str:
    """Reduce an attempt-failure message to its stable prefix
    (``attempt N: ExceptionType``) — the free-text tail may carry
    wall-clock numbers that never replay equal."""
    head, _, detail = str(message).partition(": ")
    kind = detail.split(":", 1)[0] if detail else ""
    return f"{head}: {kind}" if kind else head


@dataclass
class Scenario:
    """One recorded serve batch plus its golden outcomes."""

    name: str
    specs: list = field(default_factory=list)       # list[JobSpec]
    golden: dict = field(default_factory=dict)      # name -> GoldenJob
    description: str = ""
    policy: str = "fifo"

    def to_dict(self) -> dict:
        return {
            "schema": SCENARIO_SCHEMA,
            "name": self.name,
            "description": self.description,
            "policy": self.policy,
            "jobs": [s.to_dict() for s in self.specs],
            "golden": {name: g.to_dict()
                       for name, g in sorted(self.golden.items())},
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "Scenario":
        if d.get("schema") != SCENARIO_SCHEMA:
            raise ValueError(
                f"unknown scenario schema {d.get('schema')!r} "
                f"(expected {SCENARIO_SCHEMA})")
        return cls(
            name=d["name"],
            specs=[JobSpec.from_dict(j) for j in d.get("jobs", [])],
            golden={name: GoldenJob.from_dict(g)
                    for name, g in (d.get("golden") or {}).items()},
            description=d.get("description", ""),
            policy=d.get("policy", "fifo"),
        )


def canonical_bytes(scenario: Scenario) -> bytes:
    """The canonical serialization: same scenario, same bytes, always."""
    return (json.dumps(scenario.to_dict(), sort_keys=True, indent=1)
            + "\n").encode()


def save_scenario(path: str | Path, scenario: Scenario) -> Path:
    """Atomically and durably write ``scenario`` at ``path`` (the
    shared :func:`repro.storage.atomic_write_bytes` protocol)."""
    return atomic_write_bytes(path, canonical_bytes(scenario))


def load_scenario(path: str | Path) -> Scenario:
    """Parse one scenario file; quarantine-and-raise on anything broken."""
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
        return Scenario.from_dict(doc)
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, ValueError, KeyError, TypeError,
            OSError) as exc:
        quarantined = quarantine(path)
        raise CorruptScenario(
            f"scenario file {path} is corrupt ({type(exc).__name__}: "
            f"{exc}); quarantined to {quarantined}", path=path,
            quarantined=quarantined) from exc


def scenario_paths(targets: Iterable[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted list of scenario files
    (``*.json`` directly inside each directory)."""
    out: list[Path] = []
    for target in targets:
        p = Path(target)
        if p.is_dir():
            out.extend(sorted(q for q in p.glob("*.json") if q.is_file()))
        else:
            out.append(p)
    return out
