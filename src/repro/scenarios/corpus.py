"""The checked-in scenario corpus (``tests/scenarios/``).

One definition per regression surface the serving stack must keep
reproducing byte-for-byte: each of the six driver adapters, a mixed
SJF batch, kill-and-resume through the checkpoint store, device-fault
graceful degradation, an autotuned (``strategy="auto"``) job, and
mutation-stream (recorded update trace) variants for graphs, formulas,
meshes, and insertion batches.

``python -m repro.scenarios record-corpus tests/scenarios`` re-records
every definition; because recording is hermetic and the serialization
canonical, an unchanged system re-records byte-identical files — which
is itself asserted by the test suite.

Inputs are deliberately tiny: the corpus replays in CI on every push,
so each scenario is sized for seconds, not fidelity.  Scale lives in
the benchmarks.
"""

from __future__ import annotations

from pathlib import Path

from ..serve.faults import FaultPlan
from ..serve.jobs import JobSpec
from ..sessions import SessionSpec
from .format import save_scenario
from .record import record_scenario

__all__ = ["corpus_definitions", "record_corpus", "record_one",
           "DEFAULT_CORPUS_DIR"]

#: where the checked-in corpus lives, relative to the repo root
DEFAULT_CORPUS_DIR = Path("tests") / "scenarios"


def _spec(name, algorithm, params, *, strategy=None, seed=0, **kw) -> JobSpec:
    if isinstance(kw.get("fault"), dict):
        kw["fault"] = FaultPlan.from_dict(kw["fault"])
    return JobSpec(name=name, algorithm=algorithm, params=params,
                   strategy=strategy if strategy is not None else {},
                   seed=seed, **kw)


def _session_spec(name, algorithm, params, batches, *, seed=0,
                  **kw) -> JobSpec:
    """An incremental-session job (the :mod:`repro.sessions` envelope):
    replay re-streams the batches through the delta planners, so the
    golden digest also pins the delta-vs-full recompute equivalence."""
    return SessionSpec(name=name, algorithm=algorithm, params=params,
                       strategy={}, seed=seed, batches=batches,
                       **kw).to_job_spec()


def corpus_definitions() -> list[dict]:
    """Every corpus scenario as ``{name, description, policy, specs}``."""
    return [
        {
            "name": "dmr_fence",
            "description": "DMR refinement, 3-phase conflict marking with "
                           "the Xiao-Feng fence barrier.",
            "specs": [_spec("dmr-fence", "dmr", {"n_triangles": 120},
                            strategy={"conflict": "3phase",
                                      "barrier": "fence"}, seed=101)],
        },
        {
            "name": "insertion_point_stream",
            "description": "GPU Delaunay point insertion with a recorded "
                           "add/drop point-stream mutation.",
            "specs": [_spec(
                "insert-points", "insertion",
                {"n_triangles": 150, "n_points": 10,
                 "mutations": [
                     {"op": "add_points", "count": 6, "seed": 4},
                     {"op": "drop_points", "count": 3, "seed": 5}]},
                seed=103)],
        },
        {
            "name": "sp_cached",
            "description": "Survey propagation with the paper's GPU edge "
                           "cache enabled.",
            "specs": [_spec("sp-cached", "sp",
                            {"num_vars": 48, "k": 3, "ratio": 3.0},
                            strategy={"cached": True}, seed=107)],
        },
        {
            "name": "pta_pull",
            "description": "Andersen points-to analysis, pull variant, "
                           "paper defaults.",
            "specs": [_spec("pta-pull", "pta",
                            {"num_vars": 48, "num_constraints": 90},
                            seed=109)],
        },
        {
            "name": "mst_random",
            "description": "Boruvka MST contraction on a random graph.",
            "specs": [_spec("mst-random", "mst",
                            {"num_nodes": 120, "num_edges": 420},
                            seed=113)],
        },
        {
            "name": "engine_recolor",
            "description": "Generic morph engine: speculative graph "
                           "recoloring (the §10 workload).",
            "specs": [_spec("recolor", "engine",
                            {"num_nodes": 90, "num_edges": 260},
                            seed=127)],
        },
        {
            "name": "mixed_sjf",
            "description": "Mixed four-algorithm batch ordered "
                           "shortest-job-first by the static cost proxy.",
            "policy": "sjf",
            "specs": [
                _spec("mix-dmr", "dmr", {"n_triangles": 100}, seed=1),
                _spec("mix-sp", "sp",
                      {"num_vars": 40, "k": 3, "ratio": 3.0}, seed=2),
                _spec("mix-mst", "mst",
                      {"num_nodes": 100, "num_edges": 350}, seed=3),
                _spec("mix-recolor", "engine",
                      {"num_nodes": 60, "num_edges": 170}, seed=4),
            ],
        },
        {
            "name": "engine_kill_resume",
            "description": "Kill injected at round 3 of a checkpointed "
                           "engine job; the retry resumes from the last "
                           "durable round and must match an uninterrupted "
                           "run byte-for-byte.",
            "specs": [_spec(
                "kill-resume", "engine",
                {"num_nodes": 80, "num_edges": 240}, seed=131,
                checkpoint_every=2, retries=2, backoff_s=0.0,
                fault={"kind": "kill", "attempts": [1], "at_round": 3})],
        },
        {
            "name": "pta_degraded",
            "description": "Chunk-pool exhaustion injected under "
                           "resilience: the §7.1 fallback chain absorbs "
                           "the fault, the digest stays byte-identical, "
                           "and the degradation event log is golden.",
            "specs": [_spec(
                "pta-degraded", "pta",
                {"num_vars": 40, "num_constraints": 70}, seed=137,
                resilience=True,
                fault={"kind": "chunk_exhausted", "attempts": [1],
                       "at_event": [1]})],
        },
        {
            "name": "mst_auto_tuned",
            "description": "strategy='auto' against a pinned empty tuning "
                           "cache: the deterministic cold tune (fixed "
                           "budget and seed) resolves the strategy at "
                           "replay time.",
            "specs": [_spec("mst-auto", "mst",
                            {"num_nodes": 80, "num_edges": 240},
                            strategy="auto", seed=139)],
        },
        {
            "name": "mst_edge_stream",
            "description": "Recorded dynamic-connectivity-style edge "
                           "update stream (insert, delete, reweight) "
                           "replayed against Boruvka contraction.",
            "specs": [_spec(
                "mst-stream", "mst",
                {"num_nodes": 110, "num_edges": 380,
                 "mutations": [
                     {"op": "add_edges", "count": 40, "seed": 1},
                     {"op": "drop_edges", "count": 25, "seed": 2},
                     {"op": "reweight_edges", "count": 30, "seed": 3}]},
                seed=149)],
        },
        {
            "name": "sp_clause_stream",
            "description": "Clause insert/delete stream applied to the "
                           "formula before the SP pipeline runs.",
            "specs": [_spec(
                "sp-stream", "sp",
                {"num_vars": 40, "k": 3, "ratio": 3.0,
                 "mutations": [
                     {"op": "add_clauses", "count": 15, "seed": 5},
                     {"op": "drop_clauses", "count": 10, "seed": 6}]},
                seed=151)],
        },
        {
            "name": "mst_session_stream",
            "description": "Incremental MST session: a multi-batch edge "
                           "stream (adds, reweights, drops) served through "
                           "the repro.sessions delta planner; the golden "
                           "digest equals a cold solve of the fully "
                           "mutated graph.",
            "specs": [_session_spec(
                "mst-session", "mst",
                {"num_nodes": 140, "num_edges": 520},
                [[{"op": "add_edges", "count": 8, "seed": 11}],
                 [{"op": "reweight_edges", "count": 6, "seed": 12}],
                 [{"op": "drop_edges", "count": 5, "seed": 13}],
                 [{"op": "add_edges", "count": 4, "seed": 14},
                  {"op": "reweight_edges", "count": 4, "seed": 15}]],
                seed=163)],
        },
        {
            "name": "pta_session_stream",
            "description": "Incremental PTA session: constraint batches "
                           "grown monotonically; each batch warm-starts "
                           "the Andersen fixed point from the previous "
                           "solution instead of re-solving.",
            "specs": [_session_spec(
                "pta-session", "pta",
                {"num_vars": 60, "num_constraints": 140},
                [[{"op": "add_constraints", "count": 6, "seed": 21}],
                 [{"op": "add_constraints", "count": 5, "seed": 22}],
                 [{"op": "add_constraints", "count": 4, "seed": 23}]],
                seed=167)],
        },
        {
            "name": "dmr_insert_then_refine",
            "description": "Cavity mutation stream: seeded interior "
                           "points inserted through the §9 driver, then "
                           "the dirtied mesh is re-refined.",
            "specs": [_spec(
                "dmr-mutated", "dmr",
                {"n_triangles": 100,
                 "mutations": [
                     {"op": "insert_points", "count": 5, "seed": 9}]},
                seed=157)],
        },
    ]


def _to_spec(entry) -> JobSpec:
    return entry if isinstance(entry, JobSpec) else JobSpec.from_dict(entry)


def record_corpus(outdir: str | Path, *, workers: int = 0) -> list[Path]:
    """Record every corpus definition into ``outdir``; returns the paths."""
    outdir = Path(outdir)
    paths = []
    for d in corpus_definitions():
        specs = [_to_spec(s) for s in d["specs"]]
        scenario = record_scenario(
            d["name"], specs, description=d.get("description", ""),
            policy=d.get("policy", "fifo"), workers=workers)
        paths.append(save_scenario(outdir / f"{d['name']}.json", scenario))
    return paths


def record_one(name: str, outdir: str | Path, *,
               workers: int = 0) -> Path:
    """Record a single named corpus definition into ``outdir``."""
    for d in corpus_definitions():
        if d["name"] == name:
            specs = [_to_spec(s) for s in d["specs"]]
            scenario = record_scenario(
                name, specs, description=d.get("description", ""),
                policy=d.get("policy", "fifo"), workers=workers)
            return save_scenario(Path(outdir) / f"{name}.json", scenario)
    known = ", ".join(d["name"] for d in corpus_definitions())
    raise KeyError(f"unknown corpus scenario {name!r}; known: {known}")
