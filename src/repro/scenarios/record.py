"""Recording: run a batch once, capture its golden outcomes.

Recording is just a serve batch with a :class:`ScenarioRecorder`
attached to the scheduler's recorder hook, executed inside a
*hermetic* environment (:func:`scenario_environment`):

* a **fresh temporary checkpoint spool**, so kill-and-resume jobs
  resume from checkpoints written in *this* run, never from leftovers;
* a **pinned, initially-empty tuning cache** (``$REPRO_TUNE_CACHE``
  pointed at a temp file), so ``strategy="auto"`` jobs always take the
  deterministic cold-tune path (fixed budget, fixed seed) instead of
  whatever a developer's per-user cache happens to contain.

Those two knobs are exactly what made ad-hoc replays flaky; with them
fixed, a recorded batch is a pure function of its specs, and the
recorded file can promise byte-identical re-recording.
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path

from ..serve.scheduler import POLICIES, Scheduler
from .format import GoldenJob, Scenario, golden_from_record

__all__ = ["ScenarioRecorder", "scenario_environment", "run_batch",
           "record_scenario"]


class ScenarioRecorder:
    """The scheduler-hook implementation: collects finished job records
    (in submission order) and the settled :class:`BatchReport`."""

    def __init__(self) -> None:
        self.records: list = []
        self.report = None

    def on_job(self, record) -> None:
        self.records.append(record)

    def on_batch(self, report) -> None:
        self.report = report

    def goldens(self) -> dict[str, GoldenJob]:
        return {r.spec.name: golden_from_record(r) for r in self.records}


@contextmanager
def scenario_environment():
    """Hermetic record/replay context: temp checkpoint spool + pinned
    empty tuning cache.  Yields the checkpoint directory path."""
    prev_cache = os.environ.get("REPRO_TUNE_CACHE")
    with tempfile.TemporaryDirectory(prefix="repro-scenario-") as td:
        os.environ["REPRO_TUNE_CACHE"] = str(Path(td) / "tune.json")
        try:
            yield str(Path(td) / "ckpt")
        finally:
            if prev_cache is None:
                os.environ.pop("REPRO_TUNE_CACHE", None)
            else:
                os.environ["REPRO_TUNE_CACHE"] = prev_cache


def run_batch(specs, *, policy: str = "fifo", workers: int = 0,
              tracer=None) -> ScenarioRecorder:
    """Run ``specs`` hermetically; returns the populated recorder."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; known: {POLICIES}")
    recorder = ScenarioRecorder()
    with scenario_environment() as checkpoint_dir:
        scheduler = Scheduler(workers=workers, policy=policy,
                              checkpoint_dir=checkpoint_dir,
                              tracer=tracer, recorder=recorder)
        scheduler.run_batch(specs)
    return recorder


def record_scenario(name: str, specs, *, description: str = "",
                    policy: str = "fifo", workers: int = 0) -> Scenario:
    """Run ``specs`` once and return the scenario with fresh goldens.

    Job names must be unique — they key the golden table.
    """
    specs = list(specs)
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise ValueError(f"job names must be unique within a scenario; "
                         f"duplicated: {', '.join(dupes)}")
    recorder = run_batch(specs, policy=policy, workers=workers)
    return Scenario(name=name, specs=specs, golden=recorder.goldens(),
                    description=description, policy=policy)
