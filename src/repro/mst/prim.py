"""Prim's algorithm with a binary heap: a second serial MST baseline.

Complements Kruskal as an oracle and serves as the serial reference the
cost model prices for MST (the paper's Fig. 11 has no serial column,
but the examples and ablations use Prim for per-edge-rate context).
Handles disconnected inputs by restarting from every unreached node
(computes the minimum spanning forest).
"""

from __future__ import annotations

import heapq

import numpy as np

from ..core.counters import OpCounter
from .boruvka_gpu import MSTResult

__all__ = ["prim"]


def prim(num_nodes: int, src: np.ndarray, dst: np.ndarray,
         weight: np.ndarray, *, counter: OpCounter | None = None) -> MSTResult:
    ctr = counter or OpCounter()
    m = src.size
    # adjacency as CSR over the doubled edge list
    es = np.concatenate([src, dst])
    ed = np.concatenate([dst, src])
    eu = np.concatenate([np.arange(m), np.arange(m)])
    ew = np.concatenate([weight, weight])
    order = np.argsort(es, kind="stable")
    ed, eu, ew = ed[order], eu[order], ew[order]
    starts = np.searchsorted(es[order], np.arange(num_nodes + 1))

    in_tree = np.zeros(num_nodes, dtype=bool)
    chosen: list[int] = []
    heap_ops = 0
    components = 0
    for seed in range(num_nodes):
        if in_tree[seed]:
            continue
        components += 1
        in_tree[seed] = True
        heap: list[tuple[int, int, int]] = []
        for j in range(starts[seed], starts[seed + 1]):
            heapq.heappush(heap, (int(ew[j]), int(eu[j]), int(ed[j])))
            heap_ops += 1
        while heap:
            w, e, v = heapq.heappop(heap)
            heap_ops += 1
            if in_tree[v]:
                continue
            in_tree[v] = True
            chosen.append(e)
            for j in range(starts[v], starts[v + 1]):
                if not in_tree[ed[j]]:
                    heapq.heappush(heap, (int(ew[j]), int(eu[j]),
                                          int(ed[j])))
                    heap_ops += 1
    mst = np.asarray(sorted(set(chosen)), dtype=np.int64)
    ctr.launch("prim", items=num_nodes, word_reads=4 * heap_ops,
               word_writes=heap_ops,
               work_per_thread=np.asarray([heap_ops]))
    return MSTResult(mst_edges=mst, total_weight=int(weight[mst].sum()),
                     counter=ctr, rounds=1, num_components=components)
