"""Kruskal's algorithm: the correctness oracle for the Boruvka variants.

Sort edges by weight, union-find with union by size and path
compression.  Also the reproduction's serial MST reference.
"""

from __future__ import annotations

import numpy as np

from ..core.counters import OpCounter
from .boruvka_gpu import MSTResult

__all__ = ["kruskal"]


def kruskal(num_nodes: int, src: np.ndarray, dst: np.ndarray,
            weight: np.ndarray, *,
            counter: OpCounter | None = None) -> MSTResult:
    ctr = counter or OpCounter()
    m = src.size
    order = np.lexsort((np.arange(m), weight))
    parent = np.arange(num_nodes, dtype=np.int64)
    size = np.ones(num_nodes, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = int(parent[root])
        while parent[x] != root:
            parent[x], x = root, int(parent[x])
        return root

    chosen = []
    for e in order.tolist():
        a, b = find(int(src[e])), find(int(dst[e]))
        if a == b:
            continue
        if size[a] < size[b]:
            a, b = b, a
        parent[b] = a
        size[a] += size[b]
        chosen.append(e)
        if len(chosen) == num_nodes - 1:
            break
    mst = np.asarray(sorted(chosen), dtype=np.int64)
    ctr.launch("kruskal", items=m, word_reads=4 * m, word_writes=m,
               work_per_thread=np.asarray([3 * m]))
    roots = {find(v) for v in range(num_nodes)}
    return MSTResult(mst_edges=mst, total_weight=int(weight[mst].sum()),
                     counter=ctr, rounds=1, num_components=len(roots))
