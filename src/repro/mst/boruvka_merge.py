"""Adjacency-list-merging Boruvka (the Galois 2.1.4 baseline, Fig. 11).

"The Galois version 2.1.4 implements edge contraction by explicitly
merging adjacency lists ... the cost of merging adjacency lists is
directly proportional to the node degrees.  Therefore, denser graphs
are processed more slowly.  Moreover, the cost increases for later
iterations as the graph becomes smaller and denser."

This emulation contracts literally: every supernode owns an adjacency
list; contracting an edge concatenates the two endpoint lists (cost
len(a) + len(b), charged as real work) and leaves stale intra-edges to
be filtered on later scans (also charged).  On power-law and random
graphs the surviving supernode lists grow toward O(m) and get re-merged
and re-scanned every round — the super-linear blowup behind RMAT20's
1393 s in Fig. 11.  On roads and grids, degrees stay tiny and the same
code is fast.
"""

from __future__ import annotations

import numpy as np

from ..core.counters import OpCounter
from .boruvka_gpu import MSTResult

__all__ = ["boruvka_merge"]


def boruvka_merge(num_nodes: int, src: np.ndarray, dst: np.ndarray,
                  weight: np.ndarray, *, threads: int = 48,
                  counter: OpCounter | None = None,
                  max_rounds: int = 128) -> MSTResult:
    """Explicit-merging Boruvka; counts are priced with the CPU model.

    ``threads`` only shapes the per-round work distribution recorded
    for the counters (the contraction itself is deterministic).
    """
    ctr = counter or OpCounter()
    m = src.size
    key = (weight.astype(np.int64) << 31) | np.arange(m, dtype=np.int64)
    # adjacency lists of (key, other_endpoint_supernode_id_at_insert)
    adj: list[list] = [[] for _ in range(num_nodes)]
    for e in range(m):
        s, d, k = int(src[e]), int(dst[e]), int(key[e])
        adj[s].append((k, d))
        adj[d].append((k, s))

    parent = np.arange(num_nodes, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, int(parent[x])
        return int(root)

    chosen: list[int] = []
    rounds = 0
    alive = list(range(num_nodes))
    while rounds < max_rounds:
        rounds += 1
        alive = [s for s in alive if parent[s] == s and adj[s]]
        if not alive:
            break
        scan_work = []
        merge_work = 0
        picks: list[tuple[int, int, int]] = []  # (key, comp, partner)
        for s in alive:
            best = None
            kept = []
            for (k, other) in adj[s]:
                ro = find(other)
                if ro == s:
                    continue  # stale intra-component edge, dropped
                kept.append((k, ro))
                if best is None or k < best[0]:
                    best = (k, ro)
            scan_work.append(len(adj[s]) + 1)
            adj[s] = kept
            if best is not None:
                picks.append((best[0], s, best[1]))
        if not picks:
            ctr.launch("merge.round", items=len(alive),
                       word_reads=int(sum(scan_work)), barriers=1,
                       work_per_thread=np.asarray(scan_work))
            break
        merged_any = False
        for k, s, t in sorted(picks):
            rs, rt = find(s), find(t)
            if rs == rt:
                continue
            chosen.append(int(k & ((1 << 31) - 1)))
            merged_any = True
            # Galois 2.1.4 merges the target's list into the source's,
            # paying both list lengths — no small-into-large trick.
            merge_work += len(adj[rs]) + len(adj[rt])
            adj[rs].extend(adj[rt])
            adj[rt] = []
            parent[rt] = rs
        ctr.launch("merge.round", items=len(alive),
                   word_reads=int(sum(scan_work)) + 2 * merge_work,
                   word_writes=2 * merge_work,
                   atomics=2 * len(picks), barriers=1,
                   work_per_thread=np.asarray(scan_work) if scan_work
                   else None)
        if not merged_any:
            break
    mst = np.unique(np.asarray(chosen, dtype=np.int64)) if chosen else \
        np.empty(0, dtype=np.int64)
    total = int(weight[mst].sum())
    roots = {find(v) for v in range(num_nodes)}
    return MSTResult(mst_edges=mst, total_weight=total, counter=ctr,
                     rounds=rounds, num_components=len(roots))
