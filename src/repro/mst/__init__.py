"""Boruvka minimum spanning tree (paper Sections 5, 6.5, 8.4)."""

from .boruvka_gpu import MSTResult, boruvka_gpu
from .boruvka_merge import boruvka_merge
from .boruvka_unionfind import boruvka_unionfind
from .kruskal import kruskal
from .prim import prim

__all__ = ["MSTResult", "boruvka_gpu", "boruvka_merge",
           "boruvka_unionfind", "kruskal", "prim"]
