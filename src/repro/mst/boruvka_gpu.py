"""GPU-style Boruvka MST via component-based pseudo edge contraction
(paper Sections 5, 6.5, 8.4).

"Our implementation of edge contraction does not literally merge the
incident edges ... instead, we maintain groups of endpoints that form a
partition over nodes."  Each round runs the paper's four kernels:

1. per *node*: the minimum-weight edge whose other endpoint lies in a
   different component;
2. per *component*: the minimum such edge over its member nodes;
3. cycle breaking: chosen edges pair components up; mutual pairs form
   2-cycles (with globally unique edge keys no longer cycles exist) and
   the smaller-id component becomes the representative;
4. merging: every component re-points to its partner, then pointer
   jumping flattens the forest, and the node->component mapping is
   re-gathered (the dynamic two-mapping maintenance of Section 6.5 —
   one atomic append per node rebuilds the component-to-nodes lists).

Edge keys are ``(weight << 31) | undirected_edge_id``: unique per
undirected edge and identical from both endpoints, which guarantees
mutual minimum pairs select the *same* edge and the partner graph has
only 2-cycles.

The chosen edges across all rounds are exactly an MST/forest (verified
against Kruskal in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.counters import OpCounter
from ..resilience.policy import launch_ok, maybe_activate_resilience
from ..vgpu.atomics import atomic_min
from ..vgpu.instrument import (current_tracer, maybe_activate,
                               maybe_activate_tracer, trace_span)

__all__ = ["MSTResult", "boruvka_gpu", "serve_job"]

_INF = np.int64(2**62)


@dataclass
class MSTResult:
    mst_edges: np.ndarray     # undirected edge ids chosen
    total_weight: int
    counter: OpCounter
    rounds: int
    num_components: int       # 1 for connected inputs (forest otherwise)


def boruvka_gpu(num_nodes: int, src: np.ndarray, dst: np.ndarray,
                weight: np.ndarray, *, counter: OpCounter | None = None,
                max_rounds: int = 128, barrier=None, sanitizer=None,
                tracer=None, resilience=None) -> MSTResult:
    """Component-based Boruvka over a once-per-edge undirected list.

    ``barrier`` (an optional :class:`repro.vgpu.sync.BarrierModel`)
    selects the §7.3 global-barrier scheme the per-kernel round
    barriers are priced under; ``None`` keeps the cost model's default.
    The chosen edges are identical either way — only the modeled time
    moves, which is what makes the barrier a tunable axis for
    :mod:`repro.tune`.

    ``sanitizer`` (opt-in) activates a :mod:`repro.analysis` detector
    around the solve; the per-round atomic-min reductions report to it.
    ``tracer`` (opt-in) records the rounds and four kernels as a
    :mod:`repro.obs` span hierarchy.  ``resilience`` (opt-in) re-issues
    rounds refused by transient injected kernel aborts; without it, the
    fault propagates typed.
    """
    with maybe_activate(sanitizer):
        with maybe_activate_tracer(tracer):
            with maybe_activate_resilience(resilience):
                with trace_span("mst.boruvka_gpu", cat="driver"):
                    return _boruvka_impl(num_nodes, src, dst, weight,
                                         counter=counter,
                                         max_rounds=max_rounds,
                                         barrier=barrier, resil=resilience)


def _boruvka_impl(num_nodes: int, src: np.ndarray, dst: np.ndarray,
                  weight: np.ndarray, *, counter: OpCounter | None,
                  max_rounds: int, barrier=None, resil=None) -> MSTResult:
    ctr = counter or OpCounter()
    if barrier is not None:
        ctr.scalars["barrier_kind"] = barrier.index
    m = src.size
    if weight.size and int(weight.max()) >= (1 << 31):
        raise ValueError("weights must fit in 31 bits for edge keys")
    # Directed doubling (CSR-equivalent edge array; Section 6).
    es = np.concatenate([src, dst]).astype(np.int64)
    ed = np.concatenate([dst, src]).astype(np.int64)
    und = np.concatenate([np.arange(m), np.arange(m)]).astype(np.int64)
    key = (np.concatenate([weight, weight]).astype(np.int64) << 31) | und

    comp = np.arange(num_nodes, dtype=np.int64)
    chosen: list[np.ndarray] = []
    rounds = 0
    while rounds < max_rounds:
        if not launch_ok(resil, "mst.round"):
            continue    # absorbed transient abort: re-issue the round
        rounds += 1
        tr = current_tracer()
        if tr is not None:
            tr.on_span_begin("mst.iteration", cat="iteration", round=rounds)
        cs = comp[es]
        cd = comp[ed]
        valid = cs != cd
        n_valid = int(valid.sum())
        if tr is not None:
            tr.on_gauge("mst.valid_edges", n_valid)
        if n_valid == 0:
            if tr is not None:
                tr.on_span_end()
            break
        # ---- kernel 1: per-node minimum inter-component edge -------- #
        node_min = np.full(num_nodes, _INF, dtype=np.int64)
        atomic_min(node_min, es[valid], key[valid])
        deg_work = np.bincount(es, minlength=num_nodes)  # full scan per node
        ctr.launch("mst.k1_nodemin", items=num_nodes,
                   word_reads=2 * es.size + num_nodes,
                   word_writes=num_nodes, barriers=1,
                   work_per_thread=deg_work)
        # ---- kernel 2: per-component minimum ------------------------ #
        comp_min = np.full(num_nodes, _INF, dtype=np.int64)
        atomic_min(comp_min, comp, node_min)
        # One thread per component walks its node list (the Section 6.5
        # component-to-nodes mapping).  In late rounds a few giant
        # components dominate: that thread's serial scan is the kernel's
        # critical path — the structural reason the paper's GPU MST
        # struggles on sparse many-round graphs.
        comp_sizes = np.bincount(comp, minlength=num_nodes)
        comp_work = comp_sizes[comp_sizes > 0]
        ctr.launch("mst.k2_compmin", items=int(comp_work.size),
                   word_reads=2 * num_nodes, word_writes=int(comp_work.size),
                   barriers=1, work_per_thread=comp_work)
        # ---- kernel 3: partner + cycle breaking ---------------------- #
        has_edge = comp_min < _INF
        edge_id = (comp_min & ((1 << 31) - 1))
        partner = np.arange(num_nodes, dtype=np.int64)
        reps = np.flatnonzero(has_edge)
        # the chosen undirected edge of component c joins comp[src], comp[dst]
        eu = comp[src[edge_id[reps]]]
        ev = comp[dst[edge_id[reps]]]
        partner[reps] = np.where(eu == reps, ev, eu)
        two_cycle = partner[partner] == np.arange(num_nodes)
        rep_side = two_cycle & (np.arange(num_nodes) < partner)
        partner[rep_side] = np.arange(num_nodes)[rep_side]
        ctr.launch("mst.k3_cycle", items=int(reps.size),
                   word_reads=4 * reps.size, word_writes=reps.size,
                   barriers=1)
        # components that merge contribute their chosen edge
        merging = has_edge & (partner != np.arange(num_nodes))
        chosen.append(edge_id[merging])
        # ---- kernel 4: merge + pointer jumping ----------------------- #
        jump_rounds = 0
        while True:
            nxt = partner[partner]
            jump_rounds += 1
            if np.array_equal(nxt, partner):
                break
            partner = nxt
        comp = partner[comp]
        # Rebuild the component-to-nodes mapping: one atomic append per
        # node (the Section 6.5 dynamic-mapping cost).
        ctr.launch("mst.k4_merge", items=num_nodes,
                   word_reads=(jump_rounds + 1) * num_nodes,
                   word_writes=2 * num_nodes, atomics=num_nodes,
                   barriers=1 + jump_rounds)
        if tr is not None:
            tr.on_gauge("mst.components", int(np.unique(comp).size))
            tr.on_span_end()
    mst = np.unique(np.concatenate(chosen)) if chosen else \
        np.empty(0, dtype=np.int64)
    total = int(weight[mst].sum())
    n_comp = int(np.unique(comp).size)
    return MSTResult(mst_edges=mst, total_weight=total, counter=ctr,
                     rounds=rounds, num_components=n_comp)


# ------------------------------------------------------------------ #
# repro.serve adapter                                                #
# ------------------------------------------------------------------ #

def serve_job(params, strategy, seed, ctx):
    """Job adapter for :mod:`repro.serve` (``algorithm="mst"``).

    Builds a random graph (``num_nodes``, ``num_edges``) from ``seed``
    and contracts it with the component-based Boruvka kernels.
    ``strategy`` understands ``barrier`` (``"fence"`` /
    ``"hierarchical"`` / ``"naive"`` — the §7.3 pricing of the
    per-kernel round barriers); ``strategy="auto"`` substitutes the
    :mod:`repro.tune` cached/tuned configuration, and unknown keys
    raise ``ValueError``.  ``params["mutations"]`` may carry an
    ``add_edges``/``drop_edges``/``reweight_edges`` stream
    (:mod:`repro.serve.mutations`) — the dynamic-connectivity "edge
    update stream" shape — applied to the edge list before contraction.
    """
    from ..graphgen import random_graph
    from ..serve.mutations import apply_graph_mutations, check_mutations
    from ..tune import resolve_strategy
    from ..vgpu.sync import FENCE, HIERARCHICAL, NAIVE_ATOMIC

    strategy = resolve_strategy("mst", params, strategy)
    mutations = check_mutations("mst", params.get("mutations", ()))
    barriers = {"fence": FENCE, "hierarchical": HIERARCHICAL,
                "naive": NAIVE_ATOMIC}
    barrier = barriers[strategy["barrier"]] if "barrier" in strategy else None
    num_nodes = int(params.get("num_nodes", 300))
    num_edges = int(params.get("num_edges", 4 * num_nodes))
    n, src, dst, w = random_graph(num_nodes, num_edges, seed=seed)
    if mutations:
        src, dst, w = apply_graph_mutations(n, src, dst, w, mutations)
    res = boruvka_gpu(n, src, dst, w, counter=ctx.counter, barrier=barrier,
                      resilience=getattr(ctx, "resilience", None))
    summary = {"total_weight": int(res.total_weight), "rounds": res.rounds,
               "num_components": res.num_components,
               "mst_edges": int(res.mst_edges.size)}
    return (res.mst_edges,), summary
