"""Component-based multicore Boruvka (the Galois 2.1.5 baseline).

"We modified the Galois implementation (in version 2.1.5) to also use a
component-based approach.  Additionally, the new multicore code
incorporates a fast union-find data structure that maintains groups of
nodes, keeps the graph unmodified, and employs a bulk-synchronous
executor."  (Section 8.4)

Bulk-synchronous rounds over the *original* edge list: per-node minimum
inter-component edge, per-component minimum, union by the cycle-break
rule, with a path-compressing union-find instead of the GPU's pointer
jumping.  No adjacency lists are ever merged, so per-round cost stays
O(n + m) regardless of density — which is why this version beats the
explicit-merging one everywhere.
"""

from __future__ import annotations

import numpy as np

from ..core.counters import OpCounter
from .boruvka_gpu import MSTResult

__all__ = ["boruvka_unionfind"]

_INF = np.int64(2**62)


def boruvka_unionfind(num_nodes: int, src: np.ndarray, dst: np.ndarray,
                      weight: np.ndarray, *, counter: OpCounter | None = None,
                      max_rounds: int = 128) -> MSTResult:
    ctr = counter or OpCounter()
    m = src.size
    und = np.arange(m, dtype=np.int64)
    key = (weight.astype(np.int64) << 31) | und

    parent = np.arange(num_nodes, dtype=np.int64)

    def find_all(x: np.ndarray) -> np.ndarray:
        # vectorized find with full path compression between rounds
        root = parent[x]
        while True:
            nxt = parent[root]
            if np.array_equal(nxt, root):
                return root
            root = nxt

    chosen: list[np.ndarray] = []
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        # flatten union-find (bulk-synchronous compression pass)
        while True:
            nxt = parent[parent]
            if np.array_equal(nxt, parent):
                break
            parent = nxt
        cs = parent[src]
        cd = parent[dst]
        valid = cs != cd
        if not valid.any():
            break
        # per-component minimum edge (atomic min per endpoint component)
        comp_min = np.full(num_nodes, _INF, dtype=np.int64)
        np.minimum.at(comp_min, cs[valid], key[valid])
        np.minimum.at(comp_min, cd[valid], key[valid])
        reps = np.flatnonzero(comp_min < _INF)
        edge_id = comp_min[reps] & ((1 << 31) - 1)
        eu = parent[src[edge_id]]
        ev = parent[dst[edge_id]]
        partner_arr = np.arange(num_nodes, dtype=np.int64)
        partner_arr[reps] = np.where(eu == reps, ev, eu)
        two_cycle = partner_arr[partner_arr] == np.arange(num_nodes)
        rep_side = two_cycle & (np.arange(num_nodes) < partner_arr)
        partner_arr[rep_side] = np.arange(num_nodes)[rep_side]
        merging = (comp_min < _INF) & \
            (partner_arr != np.arange(num_nodes))
        chosen.append((comp_min[merging] & ((1 << 31) - 1)))
        parent = partner_arr[parent]
        # work: one edge scan + one union pass, spread over the threads
        per_item = np.bincount(np.concatenate([cs[valid], cd[valid]]),
                               minlength=num_nodes)
        ctr.launch("uf.round", items=num_nodes,
                   word_reads=3 * int(valid.sum()) + 2 * num_nodes,
                   word_writes=num_nodes,
                   atomics=2 * int(merging.sum()),
                   barriers=1, work_per_thread=per_item)
    mst = np.unique(np.concatenate(chosen)) if chosen else \
        np.empty(0, dtype=np.int64)
    total = int(weight[mst].sum())
    while True:
        nxt = parent[parent]
        if np.array_equal(nxt, parent):
            break
        parent = nxt
    n_comp = int(np.unique(parent).size)
    return MSTResult(mst_edges=mst, total_weight=total, counter=ctr,
                     rounds=rounds, num_components=n_comp)
