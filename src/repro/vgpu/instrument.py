"""Instrumentation hook registry for the virtual GPU.

This module is the *hook point* between the simulated device and the
two observability subsystems — the :mod:`repro.analysis` sanitizer and
the :mod:`repro.obs` tracer — and deliberately knows nothing about any
concrete client.  The device primitives (:mod:`.atomics`,
:mod:`.memory`, :mod:`.kernel`), the conflict engine
(:mod:`repro.core.conflict`) and the counters consult
:func:`current_sanitizer` / :func:`current_tracer` on every operation;
when no client is active (the default) each check is a single ``None``
comparison, so production runs pay essentially nothing and consume no
RNG draws.

A sanitizer is any object implementing the :class:`SanitizerHooks`
interface (all methods are optional no-ops on the base class).  It is
installed for a dynamic scope with :func:`activate`::

    from repro.analysis import RaceDetector

    det = RaceDetector()
    with det.activate():          # wraps instrument.activate(det)
        refine_gpu(mesh)
    det.assert_clean()

A tracer is any object implementing :class:`TracerHooks` (the concrete
one is :class:`repro.obs.Tracer`); it is installed with
:func:`activate_tracer` / :func:`maybe_activate_tracer` and fed through
the :func:`trace_span` / :func:`trace_launch` / :func:`trace_gauge`
convenience wrappers sprinkled through the device and core layers.

Kernels that perform raw vectorized gathers/stores outside the atomics
API can annotate them with :func:`record_read` / :func:`record_write`
so the race detector's shadow memory sees them too.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = [
    "SanitizerHooks", "current_sanitizer", "activate", "maybe_activate",
    "record_read", "record_write",
    "TracerHooks", "current_tracer", "activate_tracer",
    "maybe_activate_tracer", "suppress_tracer",
    "trace_span", "trace_launch", "trace_gauge",
    "FaultHooks", "current_faults", "activate_faults",
    "maybe_activate_faults", "fault_malloc", "fault_chunk", "fault_pool",
    "fault_kernel", "fault_transfer",
]


class SanitizerHooks:
    """No-op base interface for device sanitizers.

    The hook vocabulary mirrors what a bulk-synchronous device exposes:

    * kernel scopes (``on_kernel_begin`` / ``on_kernel_end``) group
      accesses for attribution;
    * ``on_barrier`` ends the current intra-kernel phase — accesses in
      different phases are ordered and can never race;
    * ``on_write`` / ``on_read`` record one batch of simulated-thread
      accesses (``kind`` is ``"plain"`` or ``"atomic"``; ``intent`` is
      ``"mark"`` for conflict-engine protocol traffic that is resolved
      by :meth:`on_marking` rather than by phase analysis);
    * ``on_alloc`` / ``on_free`` track :class:`~repro.vgpu.memory.\
DeviceAllocator` extents for bounds / use-after-free checks;
    * ``on_marking`` reports a completed marking protocol (claims plus
      the winner mask) so exclusive ownership can be registered and
      overlapping "exclusive" owners flagged;
    * ``on_spmd_barriers`` reports per-thread barrier counts from
      :func:`repro.vgpu.kernel.spmd_launch` for divergence checking.
    """

    def on_kernel_begin(self, name: str, **info) -> None:
        pass

    def on_kernel_end(self, name: str) -> None:
        pass

    def on_barrier(self) -> None:
        pass

    def on_write(self, arr: np.ndarray, idx, *, tids=None,
                 kind: str = "plain", intent: str = "store") -> None:
        pass

    def on_read(self, arr: np.ndarray, idx, *, tids=None,
                intent: str = "load") -> None:
        pass

    def on_alloc(self, arr: np.ndarray) -> None:
        pass

    def on_free(self, arr: np.ndarray) -> None:
        pass

    def on_marking(self, name: str, claims, winners: np.ndarray, *,
                   scheme: str) -> None:
        pass

    def on_spmd_barriers(self, name: str, counts: np.ndarray) -> None:
        pass


_current: SanitizerHooks | None = None


def current_sanitizer() -> SanitizerHooks | None:
    """The innermost active sanitizer, or ``None``."""
    return _current


@contextmanager
def activate(sanitizer: SanitizerHooks):
    """Install ``sanitizer`` for the dynamic extent of the ``with`` block.

    Activations nest; the innermost sanitizer receives the events (an
    outer one is restored when the inner scope exits).
    """
    global _current
    prev = _current
    _current = sanitizer
    try:
        yield sanitizer
    finally:
        _current = prev


@contextmanager
def maybe_activate(sanitizer: SanitizerHooks | None):
    """Like :func:`activate` but a no-op when ``sanitizer`` is ``None``.

    This is the opt-in entry-point idiom: every algorithm driver takes a
    ``sanitizer=None`` keyword and wraps its body in ``maybe_activate``.
    """
    if sanitizer is None:
        yield None
        return
    with activate(sanitizer):
        yield sanitizer


def record_read(arr: np.ndarray, idx, *, tids=None,
                intent: str = "load") -> None:
    """Annotate a raw vectorized gather for the active sanitizer."""
    san = _current
    if san is not None:
        san.on_read(arr, idx, tids=tids, intent=intent)


def record_write(arr: np.ndarray, idx, *, tids=None, kind: str = "plain",
                 intent: str = "store") -> None:
    """Annotate a raw vectorized store for the active sanitizer."""
    san = _current
    if san is not None:
        san.on_write(arr, idx, tids=tids, kind=kind, intent=intent)


# ------------------------------------------------------------------ #
# Tracer hooks (consumed by repro.obs)                               #
# ------------------------------------------------------------------ #

class TracerHooks:
    """No-op base interface for launch-level tracers.

    The vocabulary mirrors how the host observes a bulk-synchronous
    device:

    * span scopes (``on_span_begin`` / ``on_span_end``) delimit
      hierarchical regions — driver runs, do-while iterations, marking
      kernels;
    * ``on_launch`` reports one completed kernel launch (or one
      barrier-separated wave / conflict phase of a running kernel) with
      its operation counts, from which a tracer derives a cost-model
      duration;
    * ``on_gauge`` samples a named scalar (worklist occupancy, bytes
      live, threads-per-block, ...) at the current point of the span
      timeline;
    * ``on_geometry`` reports the launch geometry so barrier crossings
      can be priced for the configuration actually in flight.

    All hooks are *observational*: a tracer must not mutate device
    state and must not draw from any RNG, so traced runs stay
    byte-identical to untraced ones.
    """

    def on_span_begin(self, name: str, cat: str = "span", **args) -> None:
        pass

    def on_span_end(self, **args) -> None:
        pass

    def on_launch(self, name: str, *, cat: str = "kernel.launch",
                  items: int = 0, aborted: int = 0, word_reads: int = 0,
                  word_writes: int = 0, atomics: int = 0, barriers: int = 0,
                  launches: int = 1, issued_lane_steps: int = 0,
                  critical_lane_steps: int = 0) -> None:
        pass

    def on_gauge(self, name: str, value: float) -> None:
        pass

    def on_geometry(self, blocks: int, threads_per_block: int) -> None:
        pass


_current_tracer: TracerHooks | None = None


def current_tracer() -> TracerHooks | None:
    """The innermost active tracer, or ``None``."""
    return _current_tracer


@contextmanager
def activate_tracer(tracer: TracerHooks):
    """Install ``tracer`` for the dynamic extent of the ``with`` block.

    Activations nest; the innermost tracer receives the events (an
    outer one is restored when the inner scope exits).
    """
    global _current_tracer
    prev = _current_tracer
    _current_tracer = tracer
    try:
        yield tracer
    finally:
        _current_tracer = prev


@contextmanager
def maybe_activate_tracer(tracer: TracerHooks | None):
    """Like :func:`activate_tracer` but a no-op when ``tracer`` is ``None``.

    This is the opt-in entry-point idiom: every algorithm driver takes a
    ``tracer=None`` keyword and wraps its body in
    ``maybe_activate_tracer``, mirroring ``sanitizer=``.
    """
    if tracer is None:
        yield None
        return
    with activate_tracer(tracer):
        yield tracer


@contextmanager
def suppress_tracer():
    """Temporarily deactivate the tracer for the ``with`` block.

    Used by subsystems that report their own finer-grained (per-phase)
    priced events and then also feed an :class:`~repro.core.counters.\
OpCounter` — whose launch hook would otherwise price the same work a
    second time.
    """
    global _current_tracer
    prev = _current_tracer
    _current_tracer = None
    try:
        yield
    finally:
        _current_tracer = prev


@contextmanager
def trace_span(name: str, cat: str = "span", **args):
    """Open a tracer span for the ``with`` block (no-op when inactive)."""
    tr = _current_tracer
    if tr is None:
        yield None
        return
    tr.on_span_begin(name, cat=cat, **args)
    try:
        yield tr
    finally:
        tr.on_span_end()


def trace_launch(name: str, **counts) -> None:
    """Report a completed launch/phase to the active tracer, if any."""
    tr = _current_tracer
    if tr is not None:
        tr.on_launch(name, **counts)


def trace_gauge(name: str, value: float) -> None:
    """Sample a gauge on the active tracer, if any."""
    tr = _current_tracer
    if tr is not None:
        tr.on_gauge(name, value)


# ------------------------------------------------------------------ #
# Fault hooks (consumed by repro.vgpu.faults / repro.resilience)     #
# ------------------------------------------------------------------ #

class FaultHooks:
    """No-op base interface for device fault injectors.

    Unlike the sanitizer and tracer — which *observe* — a fault client
    may **raise** from any hook (a typed :class:`repro.errors.\
DeviceFault` subclass) or sleep wall-clock time, modeling the device
    failing underneath the host.  It must still never mutate device
    state or draw from a shared RNG, so a run whose faults are all
    absorbed by the resilience layer stays byte-identical to a
    fault-free run.

    The hook vocabulary covers the device's failure surfaces:

    * ``on_malloc`` — a :class:`~repro.vgpu.memory.DeviceAllocator`
      request (and driver-level array growth): may raise
      :class:`~repro.errors.OutOfDeviceMemory`;
    * ``on_chunk_alloc`` — the §7.1 Kernel-Only chunk pool handing out
      a fresh chunk: may raise :class:`~repro.errors.\
ChunkPoolExhausted`;
    * ``on_pool_release`` — the §7.2 recycle free-list absorbing
      deleted slots: may raise :class:`~repro.errors.\
RecyclePoolExhausted`;
    * ``on_kernel_launch`` — a named launch about to start: may raise
      :class:`~repro.errors.KernelAborted` (the retryable transient);
    * ``on_transfer`` — a host<->device copy of ``words`` words: may
      sleep (slow-PCIe modeling) but must not raise.
    """

    def on_malloc(self, nbytes: int) -> None:
        pass

    def on_chunk_alloc(self) -> None:
        pass

    def on_pool_release(self, n: int) -> None:
        pass

    def on_kernel_launch(self, name: str) -> None:
        pass

    def on_transfer(self, words: int) -> None:
        pass


_current_faults: FaultHooks | None = None


def current_faults() -> FaultHooks | None:
    """The innermost active fault client, or ``None``."""
    return _current_faults


@contextmanager
def activate_faults(faults: FaultHooks):
    """Install ``faults`` for the dynamic extent of the ``with`` block.

    Activations nest; the innermost client receives the events (an
    outer one is restored when the inner scope exits).
    """
    global _current_faults
    prev = _current_faults
    _current_faults = faults
    try:
        yield faults
    finally:
        _current_faults = prev


@contextmanager
def maybe_activate_faults(faults: FaultHooks | None):
    """Like :func:`activate_faults` but a no-op when ``faults`` is
    ``None`` — the opt-in idiom mirroring ``sanitizer=``/``tracer=``."""
    if faults is None:
        yield None
        return
    with activate_faults(faults):
        yield faults


def fault_malloc(nbytes: int) -> None:
    """Offer an allocation of ``nbytes`` to the active fault client."""
    fc = _current_faults
    if fc is not None:
        fc.on_malloc(nbytes)


def fault_chunk() -> None:
    """Offer a chunk-pool allocation to the active fault client."""
    fc = _current_faults
    if fc is not None:
        fc.on_chunk_alloc()


def fault_pool(n: int) -> None:
    """Offer a recycle-pool release of ``n`` slots to the fault client."""
    fc = _current_faults
    if fc is not None:
        fc.on_pool_release(n)


def fault_kernel(name: str) -> None:
    """Offer a named kernel launch to the active fault client."""
    fc = _current_faults
    if fc is not None:
        fc.on_kernel_launch(name)


def fault_transfer(words: int) -> None:
    """Offer a host<->device transfer to the active fault client."""
    fc = _current_faults
    if fc is not None:
        fc.on_transfer(words)
