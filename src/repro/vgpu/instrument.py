"""Sanitizer hook registry for the virtual GPU.

This module is the *hook point* between the simulated device and the
:mod:`repro.analysis` sanitizer subsystem — and deliberately knows
nothing about any concrete sanitizer.  The device primitives
(:mod:`.atomics`, :mod:`.memory`, :mod:`.kernel`) and the conflict
engine (:mod:`repro.core.conflict`) consult :func:`current_sanitizer`
on every operation; when no sanitizer is active (the default) the check
is a single ``None`` comparison, so production runs pay essentially
nothing.

A sanitizer is any object implementing the :class:`SanitizerHooks`
interface (all methods are optional no-ops on the base class).  It is
installed for a dynamic scope with :func:`activate`::

    from repro.analysis import RaceDetector

    det = RaceDetector()
    with det.activate():          # wraps instrument.activate(det)
        refine_gpu(mesh)
    det.assert_clean()

Kernels that perform raw vectorized gathers/stores outside the atomics
API can annotate them with :func:`record_read` / :func:`record_write`
so the race detector's shadow memory sees them too.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

__all__ = [
    "SanitizerHooks", "current_sanitizer", "activate", "maybe_activate",
    "record_read", "record_write",
]


class SanitizerHooks:
    """No-op base interface for device sanitizers.

    The hook vocabulary mirrors what a bulk-synchronous device exposes:

    * kernel scopes (``on_kernel_begin`` / ``on_kernel_end``) group
      accesses for attribution;
    * ``on_barrier`` ends the current intra-kernel phase — accesses in
      different phases are ordered and can never race;
    * ``on_write`` / ``on_read`` record one batch of simulated-thread
      accesses (``kind`` is ``"plain"`` or ``"atomic"``; ``intent`` is
      ``"mark"`` for conflict-engine protocol traffic that is resolved
      by :meth:`on_marking` rather than by phase analysis);
    * ``on_alloc`` / ``on_free`` track :class:`~repro.vgpu.memory.\
DeviceAllocator` extents for bounds / use-after-free checks;
    * ``on_marking`` reports a completed marking protocol (claims plus
      the winner mask) so exclusive ownership can be registered and
      overlapping "exclusive" owners flagged;
    * ``on_spmd_barriers`` reports per-thread barrier counts from
      :func:`repro.vgpu.kernel.spmd_launch` for divergence checking.
    """

    def on_kernel_begin(self, name: str, **info) -> None:
        pass

    def on_kernel_end(self, name: str) -> None:
        pass

    def on_barrier(self) -> None:
        pass

    def on_write(self, arr: np.ndarray, idx, *, tids=None,
                 kind: str = "plain", intent: str = "store") -> None:
        pass

    def on_read(self, arr: np.ndarray, idx, *, tids=None,
                intent: str = "load") -> None:
        pass

    def on_alloc(self, arr: np.ndarray) -> None:
        pass

    def on_free(self, arr: np.ndarray) -> None:
        pass

    def on_marking(self, name: str, claims, winners: np.ndarray, *,
                   scheme: str) -> None:
        pass

    def on_spmd_barriers(self, name: str, counts: np.ndarray) -> None:
        pass


_current: SanitizerHooks | None = None


def current_sanitizer() -> SanitizerHooks | None:
    """The innermost active sanitizer, or ``None``."""
    return _current


@contextmanager
def activate(sanitizer: SanitizerHooks):
    """Install ``sanitizer`` for the dynamic extent of the ``with`` block.

    Activations nest; the innermost sanitizer receives the events (an
    outer one is restored when the inner scope exits).
    """
    global _current
    prev = _current
    _current = sanitizer
    try:
        yield sanitizer
    finally:
        _current = prev


@contextmanager
def maybe_activate(sanitizer: SanitizerHooks | None):
    """Like :func:`activate` but a no-op when ``sanitizer`` is ``None``.

    This is the opt-in entry-point idiom: every algorithm driver takes a
    ``sanitizer=None`` keyword and wraps its body in ``maybe_activate``.
    """
    if sanitizer is None:
        yield None
        return
    with activate(sanitizer):
        yield sanitizer


def record_read(arr: np.ndarray, idx, *, tids=None,
                intent: str = "load") -> None:
    """Annotate a raw vectorized gather for the active sanitizer."""
    san = _current
    if san is not None:
        san.on_read(arr, idx, tids=tids, intent=intent)


def record_write(arr: np.ndarray, idx, *, tids=None, kind: str = "plain",
                 intent: str = "store") -> None:
    """Annotate a raw vectorized store for the active sanitizer."""
    san = _current
    if san is not None:
        san.on_write(arr, idx, tids=tids, kind=kind, intent=intent)
