"""Simulated device atomics and unsynchronized scatter writes.

Kernels in this reproduction are vectorized NumPy passes, so "thousands of
threads writing concurrently" becomes a batch of ``(index, value)`` pairs.
Two memory semantics matter for morph algorithms:

* **Atomic read-modify-write** (``atomicMin``/``atomicMax``/``atomicAdd``/
  ``atomicCAS``): each operation is applied exactly once; the *final* memory
  state is order-independent for commutative ops, and each simulated thread
  can be handed the value it observed under a chosen serialization order.

* **Plain (racy) stores**: when several threads store to the same address
  in the same phase without synchronization, hardware keeps *one* of the
  values — which one is unspecified.  The paper's 3-phase conflict scheme
  (Section 7.3) exists precisely because of this.  :func:`scatter_write`
  models it faithfully: duplicate indices keep the value of the
  *last writer under a randomly shuffled order*, so tests can exercise all
  interleavings by reseeding.

All functions operate in place on NumPy arrays (device global memory).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scatter_write",
    "atomic_add",
    "atomic_min",
    "atomic_max",
    "atomic_cas_batch",
    "fetch_add_serialized",
]


def scatter_write(dest: np.ndarray, idx: np.ndarray, val: np.ndarray,
                  rng: np.random.Generator | None = None) -> None:
    """Racy concurrent stores: ``dest[idx] = val`` with unspecified winner.

    When ``idx`` contains duplicates, NumPy fancy assignment keeps the last
    occurrence — a fixed, unrealistic order.  Shuffling the pairs first
    makes the surviving writer uniformly random among the racers, which is
    the adversarial model the 3-phase scheme must tolerate.
    """
    idx = np.asarray(idx)
    val = np.asarray(val)
    if rng is not None and idx.size > 1:
        perm = rng.permutation(idx.size)
        idx = idx[perm]
        val = val[perm] if val.ndim else val
    dest[idx] = val


def atomic_add(dest: np.ndarray, idx: np.ndarray, val) -> None:
    """``atomicAdd`` without observed return values: exact final state."""
    np.add.at(dest, idx, val)


def atomic_min(dest: np.ndarray, idx: np.ndarray, val) -> None:
    """``atomicMin``: exact final state (order-independent)."""
    np.minimum.at(dest, idx, val)


def atomic_max(dest: np.ndarray, idx: np.ndarray, val) -> None:
    """``atomicMax``: exact final state (order-independent)."""
    np.maximum.at(dest, idx, val)


def fetch_add_serialized(dest: np.ndarray, idx: np.ndarray, val: np.ndarray,
                         rng: np.random.Generator | None = None) -> np.ndarray:
    """``atomicAdd`` that also returns each thread's *observed* old value.

    The observed values depend on the serialization order of same-address
    operations; a random order is used when ``rng`` is given (hardware
    gives no guarantee), else program order.  This is the primitive behind
    concurrent worklist appends: ``slot = atomicAdd(&tail, 1)``.

    Returns the per-operation old values, aligned with ``idx``/``val``.
    """
    idx = np.asarray(idx)
    val = np.asarray(val)
    if val.ndim == 0:
        val = np.full(idx.shape, val)
    order = np.arange(idx.size)
    if rng is not None and idx.size > 1:
        order = rng.permutation(idx.size)
    # Serialize same-address ops: group by index (stable in the chosen
    # order), old value = base + exclusive prefix sum within the group.
    sidx = idx[order]
    sval = val[order]
    grp = np.argsort(sidx, kind="stable")
    gi = sidx[grp]
    gv = sval[grp]
    csum = np.cumsum(gv)
    # exclusive prefix within each equal-index run
    starts = np.flatnonzero(np.concatenate(([True], gi[1:] != gi[:-1])))
    run_base = np.repeat(csum[starts] - gv[starts], np.diff(np.concatenate((starts, [gi.size]))))
    excl = csum - gv - run_base
    old = dest[gi] + excl
    np.add.at(dest, idx, val)
    # un-permute back to caller order
    out = np.empty(idx.size, dtype=dest.dtype)
    out[order[grp]] = old
    return out


def atomic_cas_batch(dest: np.ndarray, idx: np.ndarray, expected, new,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Batch ``atomicCAS``: per-op success flags under a serialization order.

    For each operation ``k``: if ``dest[idx[k]] == expected[k]`` at the
    moment it executes, store ``new[k]`` and report success.  Same-address
    operations execute in a (optionally shuffled) serial order.  This is
    the general-purpose lock/claim primitive.
    """
    idx = np.asarray(idx)
    expected = np.broadcast_to(np.asarray(expected), idx.shape)
    new = np.broadcast_to(np.asarray(new), idx.shape)
    order = np.arange(idx.size)
    if rng is not None and idx.size > 1:
        order = rng.permutation(idx.size)
    success = np.zeros(idx.size, dtype=bool)
    # Fast path: addresses touched exactly once -> vectorized.
    uniq, counts = np.unique(idx, return_counts=True)
    once = np.isin(idx, uniq[counts == 1])
    ok = once & (dest[idx] == expected)
    dest[idx[ok]] = new[ok]
    success[ok] = True
    # Contended addresses: serialize in the chosen order.
    contended = order[~once[order]]
    for k in contended:
        if dest[idx[k]] == expected[k]:
            dest[idx[k]] = new[k]
            success[k] = True
    return success
