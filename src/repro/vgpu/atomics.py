"""Simulated device atomics and unsynchronized scatter writes.

Kernels in this reproduction are vectorized NumPy passes, so "thousands of
threads writing concurrently" becomes a batch of ``(index, value)`` pairs.
Two memory semantics matter for morph algorithms:

* **Atomic read-modify-write** (``atomicMin``/``atomicMax``/``atomicAdd``/
  ``atomicOr``/``atomicCAS``): each operation is applied exactly once; the
  *final* memory state is order-independent for commutative ops, and each
  simulated thread can be handed the value it observed under a chosen
  serialization order.

* **Plain (racy) stores**: when several threads store to the same address
  in the same phase without synchronization, hardware keeps *one* of the
  values — which one is unspecified.  The paper's 3-phase conflict scheme
  (Section 7.3) exists precisely because of this.  :func:`scatter_write`
  models it faithfully: duplicate indices keep the value of the
  *last writer under a randomly shuffled order*, so tests can exercise all
  interleavings by reseeding.

All functions operate in place on NumPy arrays (device global memory).

Every function reports its access batch to the active sanitizer (see
:mod:`repro.vgpu.instrument` and :mod:`repro.analysis`) *before* touching
memory, so shadow recording observes exactly one consistent code path per
primitive regardless of fast paths taken afterwards.  The optional
``tids`` argument attributes each batch element to a simulated thread id;
without it the sanitizer treats every element as a distinct anonymous
thread (which is the right default for one-element-per-thread kernels).
"""

from __future__ import annotations

import numpy as np

from .instrument import current_sanitizer

__all__ = [
    "scatter_write",
    "atomic_add",
    "atomic_min",
    "atomic_max",
    "atomic_or",
    "atomic_cas_batch",
    "fetch_add_serialized",
]


def scatter_write(dest: np.ndarray, idx: np.ndarray, val: np.ndarray,
                  rng: np.random.Generator | None = None, *,
                  tids: np.ndarray | None = None,
                  intent: str = "store") -> None:
    """Racy concurrent stores: ``dest[idx] = val`` with unspecified winner.

    When ``idx`` contains duplicates, NumPy fancy assignment keeps the last
    occurrence — a fixed, unrealistic order.  Shuffling the pairs first
    makes the surviving writer uniformly random among the racers, which is
    the adversarial model the 3-phase scheme must tolerate.

    ``intent="mark"`` tags the store as conflict-engine marking-protocol
    traffic: the race there is *by design* and is adjudicated by the
    protocol itself, so the race detector excludes it from generic phase
    analysis and instead audits the protocol's outcome (see
    :meth:`repro.vgpu.instrument.SanitizerHooks.on_marking`).
    """
    idx = np.asarray(idx)
    val = np.asarray(val)
    san = current_sanitizer()
    if san is not None:
        # Recorded unconditionally, before any fast path below.
        san.on_write(dest, idx, tids=tids, kind="plain", intent=intent)
    if rng is not None and idx.size > 1:
        perm = rng.permutation(idx.size)
        idx = idx[perm]
        val = val[perm] if val.ndim else val
    elif rng is not None:
        # Explicit fast path: a permutation of zero or one (index, value)
        # pairs is the identity, so the shuffle is skipped on purpose and
        # the generator stream is left untouched.  There is exactly one
        # store below either way; only the shuffle is elided.
        pass
    dest[idx] = val


def atomic_add(dest: np.ndarray, idx: np.ndarray, val) -> None:
    """``atomicAdd`` without observed return values: exact final state."""
    san = current_sanitizer()
    if san is not None:
        san.on_write(dest, idx, kind="atomic")
    np.add.at(dest, idx, val)


def atomic_min(dest: np.ndarray, idx: np.ndarray, val) -> None:
    """``atomicMin``: exact final state (order-independent)."""
    san = current_sanitizer()
    if san is not None:
        san.on_write(dest, idx, kind="atomic")
    np.minimum.at(dest, idx, val)


def atomic_max(dest: np.ndarray, idx: np.ndarray, val) -> None:
    """``atomicMax``: exact final state (order-independent)."""
    san = current_sanitizer()
    if san is not None:
        san.on_write(dest, idx, kind="atomic")
    np.maximum.at(dest, idx, val)


def atomic_or(dest: np.ndarray, idx, val) -> None:
    """``atomicOr``: exact final state (order-independent).

    ``idx`` may be a tuple of index arrays for multi-dimensional
    destinations (the bit-matrix case in :mod:`repro.pta.bitset`).
    """
    san = current_sanitizer()
    if san is not None:
        san.on_write(dest, idx, kind="atomic")
    np.bitwise_or.at(dest, idx, val)


def fetch_add_serialized(dest: np.ndarray, idx: np.ndarray, val: np.ndarray,
                         rng: np.random.Generator | None = None) -> np.ndarray:
    """``atomicAdd`` that also returns each thread's *observed* old value.

    The observed values depend on the serialization order of same-address
    operations; a random order is used when ``rng`` is given (hardware
    gives no guarantee), else program order.  This is the primitive behind
    concurrent worklist appends: ``slot = atomicAdd(&tail, 1)``.

    Returns the per-operation old values, aligned with ``idx``/``val``.
    Deterministic for a fixed ``rng`` state (same seed, same history ->
    same observed values); an empty ``idx`` batch is a no-op returning an
    empty array and consuming no randomness.
    """
    idx = np.asarray(idx)
    val = np.asarray(val)
    san = current_sanitizer()
    if san is not None:
        san.on_write(dest, idx, kind="atomic")
    if idx.size == 0:
        return np.empty(0, dtype=dest.dtype)
    if val.ndim == 0:
        val = np.full(idx.shape, val)
    order = np.arange(idx.size)
    if rng is not None and idx.size > 1:
        order = rng.permutation(idx.size)
    # Serialize same-address ops: group by index (stable in the chosen
    # order), old value = base + exclusive prefix sum within the group.
    sidx = idx[order]
    sval = val[order]
    grp = np.argsort(sidx, kind="stable")
    gi = sidx[grp]
    gv = sval[grp]
    csum = np.cumsum(gv)
    # exclusive prefix within each equal-index run
    starts = np.flatnonzero(np.concatenate(([True], gi[1:] != gi[:-1])))
    run_base = np.repeat(csum[starts] - gv[starts], np.diff(np.concatenate((starts, [gi.size]))))
    excl = csum - gv - run_base
    old = dest[gi] + excl
    np.add.at(dest, idx, val)
    # un-permute back to caller order
    out = np.empty(idx.size, dtype=dest.dtype)
    out[order[grp]] = old
    return out


def atomic_cas_batch(dest: np.ndarray, idx: np.ndarray, expected, new,
                     rng: np.random.Generator | None = None) -> np.ndarray:
    """Batch ``atomicCAS``: per-op success flags under a serialization order.

    For each operation ``k``: if ``dest[idx[k]] == expected[k]`` at the
    moment it executes, store ``new[k]`` and report success.  Same-address
    operations execute in a (optionally shuffled) serial order.  This is
    the general-purpose lock/claim primitive.  An empty batch succeeds
    vacuously (empty result, no stores, no randomness consumed).
    """
    idx = np.asarray(idx)
    san = current_sanitizer()
    if san is not None:
        san.on_write(dest, idx, kind="atomic")
    expected = np.broadcast_to(np.asarray(expected), idx.shape)
    new = np.broadcast_to(np.asarray(new), idx.shape)
    order = np.arange(idx.size)
    if rng is not None and idx.size > 1:
        order = rng.permutation(idx.size)
    success = np.zeros(idx.size, dtype=bool)
    # Fast path: addresses touched exactly once -> vectorized.
    uniq, counts = np.unique(idx, return_counts=True)
    once = np.isin(idx, uniq[counts == 1])
    ok = once & (dest[idx] == expected)
    dest[idx[ok]] = new[ok]
    success[ok] = True
    # Contended addresses: serialize in the chosen order.
    contended = order[~once[order]]
    for k in contended:
        if dest[idx[k]] == expected[k]:
            dest[idx[k]] = new[k]
            success[k] = True
    return success
