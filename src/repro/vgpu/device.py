"""Virtual device descriptions: the simulated GPU and the reference CPUs.

The paper evaluates on an NVIDIA Tesla C2070 (Fermi: 14 SMs x 32 cores =
448 CUDA cores at 1.15 GHz, 48 KB shared memory per SM) against a 48-core
Intel Xeon E7540 at 2 GHz.  :class:`GpuSpec` and :class:`CpuSpec` encode
exactly those machines; the cost model (:mod:`repro.vgpu.costmodel`) turns
operation counts into modeled seconds on them.

These are *descriptions*, not executors — kernels run as vectorized NumPy
code via :mod:`repro.vgpu.kernel`; the specs only control occupancy
geometry (how many threads are resident, warp size) and the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GpuSpec", "CpuSpec", "TESLA_C2070", "XEON_E7540", "LaunchConfig"]


@dataclass(frozen=True)
class GpuSpec:
    """Geometry and speeds of a simulated GPU."""

    name: str
    num_sms: int
    cores_per_sm: int
    clock_hz: float
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_blocks_per_sm: int = 8
    shared_mem_per_sm: int = 48 * 1024
    #: global-memory words served per clock across the device (bandwidth model)
    words_per_clock: float = 32.0
    #: cycles for a kernel launch (driver + dispatch), order 10 us
    kernel_launch_cycles: int = 12_000
    #: cycles for one global-memory word access missing in cache
    global_mem_cycles: int = 400
    #: cycles for an L2-resident access
    l2_mem_cycles: int = 60
    #: extra cycles for an atomic RMW over a plain access
    atomic_cycles: int = 300
    #: cycles to cross a hierarchical global barrier
    barrier_cycles: int = 3_000
    #: cycles to cross a naive spin-on-atomic global barrier
    naive_barrier_cycles: int = 40_000
    #: host<->device copy bandwidth in words/second (PCIe 2.0 x16,
    #: ~6 GB/s sustained = 0.75 G words/s)
    pcie_words_per_s: float = 0.75e9
    #: fixed latency per cudaMemcpy call (seconds)
    pcie_latency_s: float = 10e-6

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    def resident_threads(self, threads_per_block: int, blocks: int) -> int:
        """How many threads are simultaneously resident on the device."""
        blocks_resident = min(blocks, self.num_sms * self.max_blocks_per_sm)
        return blocks_resident * threads_per_block


@dataclass(frozen=True)
class CpuSpec:
    """Geometry and speeds of the reference multicore host."""

    name: str
    cores: int
    clock_hz: float
    #: cycles for one cache-missing word access (NUMA average on the
    #: paper's 8-socket E7540 host)
    mem_cycles: int = 200
    #: cycles for a cache-hitting word access
    cached_mem_cycles: int = 4
    #: fraction of word accesses that miss cache; irregular graph codes
    #: chase pointers, so roughly every other access leaves the cache
    miss_fraction: float = 0.5
    #: extra cycles for an atomic RMW
    atomic_cycles: int = 40
    #: cycles for a full barrier across all participating threads
    barrier_cycles: int = 8_000
    #: per-item scheduling overhead of the runtime (Galois-style worklists)
    sched_cycles: int = 150
    #: one-time parallel-runtime startup (thread-pool spawn, NUMA-aware
    #: worklist setup).  The paper's Fig. 10 Galois-48 columns floor at
    #: 49-94 ms even for microseconds of analysis work, which pins this
    #: overhead empirically; 6e7 cycles = 30 ms at 2 GHz.
    startup_cycles: float = 6e7


#: The paper's GPU: Tesla C2070, 14 SMs, 448 cores, 1.15 GHz (Section 8).
TESLA_C2070 = GpuSpec(
    name="Tesla C2070",
    num_sms=14,
    cores_per_sm=32,
    clock_hz=1.15e9,
)

#: The paper's host: 8x hex-core Xeon E7540 at 2 GHz, 48 cores (Section 8).
XEON_E7540 = CpuSpec(
    name="Xeon E7540 x8",
    cores=48,
    clock_hz=2.0e9,
)


@dataclass(frozen=True)
class LaunchConfig:
    """A kernel launch configuration (grid geometry).

    The paper sets the number of thread blocks once per run, proportional
    to input size (3x to 50x the SM count), and adapts threads-per-block
    across iterations for DMR/PTA (Section 7.4).
    """

    blocks: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.threads_per_block <= 0:
            raise ValueError("launch config must be positive")

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads_per_block

    def thread_ranges(self, num_items: int):
        """Partition ``num_items`` work items into per-thread contiguous
        chunks (the paper's local-worklist assignment, Section 7.5).

        Yields ``(thread_id, start, stop)`` for threads with non-empty
        ranges.
        """
        n_threads = self.total_threads
        chunk = -(-num_items // n_threads) if num_items else 0
        for tid in range(n_threads):
            start = tid * chunk
            if start >= num_items:
                break
            yield tid, start, min(start + chunk, num_items)

    @staticmethod
    def for_input(spec: GpuSpec, input_size: int, threads_per_block: int = 256,
                  blocks_per_sm_small: int = 3, blocks_per_sm_large: int = 50,
                  large_threshold: int = 1 << 20) -> "LaunchConfig":
        """Pick a grid like the paper: 3x..50x SM count by input size."""
        frac = min(1.0, input_size / large_threshold)
        per_sm = blocks_per_sm_small + frac * (blocks_per_sm_large - blocks_per_sm_small)
        return LaunchConfig(blocks=max(1, int(spec.num_sms * per_sm)),
                            threads_per_block=threads_per_block)
