"""Global-barrier models (paper Section 7.3, "Barrier implementation").

A CUDA kernel has no hardware-wide barrier; the paper compares three
software schemes:

* :data:`NAIVE_ATOMIC` — every thread atomically decrements a global
  counter and spins on it.  Cost scales with the number of *threads*
  because atomics serialize and the spinning saturates memory bandwidth.
* :data:`HIERARCHICAL` — threads synchronize within their block with
  ``__syncthreads()`` and one representative per block joins a global
  atomic barrier.  Cost scales with the number of *blocks*.
* :data:`FENCE` — Xiao & Feng's lock-free barrier (block 0 gathers
  per-block flags), augmented with ``__threadfence()`` for Fermi's
  incoherent L1 caches as the paper describes.  Cheapest: two passes over
  per-block flags, no atomics.

Because kernels here are vectorized passes, the barrier itself needs no
execution — phases *are* separated.  What matters is the modeled cost, so
each scheme is a small cost function plus bookkeeping that the cost model
and the Fig. 8 ablation consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .device import GpuSpec

__all__ = ["BarrierKind", "BarrierModel", "NAIVE_ATOMIC", "HIERARCHICAL", "FENCE"]


class BarrierKind(Enum):
    NAIVE_ATOMIC = "naive-atomic"
    HIERARCHICAL = "hierarchical"
    FENCE = "fence"


@dataclass(frozen=True)
class BarrierModel:
    """Cost model for one intra-kernel global barrier crossing."""

    kind: BarrierKind

    def cycles(self, spec: GpuSpec, blocks: int, threads_per_block: int) -> float:
        """Modeled cycles for all participating threads to cross once."""
        threads = blocks * threads_per_block
        if self.kind is BarrierKind.NAIVE_ATOMIC:
            # One serialized atomic per thread + spin traffic until the
            # last thread arrives; the atomic unit is the bottleneck.
            return threads * spec.atomic_cycles + spec.naive_barrier_cycles
        if self.kind is BarrierKind.HIERARCHICAL:
            # __syncthreads() is nearly free; one atomic per block, then a
            # broadcast release.
            return blocks * spec.atomic_cycles + spec.barrier_cycles
        # FENCE: two linear sweeps over per-block flags by block 0 plus a
        # __threadfence() drain on every block; no atomics at all.
        return 2 * blocks * spec.l2_mem_cycles + spec.barrier_cycles // 2

    def atomics(self, blocks: int, threads_per_block: int) -> int:
        """Atomic operations issued per crossing (for the op counters)."""
        if self.kind is BarrierKind.NAIVE_ATOMIC:
            return blocks * threads_per_block
        if self.kind is BarrierKind.HIERARCHICAL:
            return blocks
        return 0

    @property
    def index(self) -> int:
        """Stable code for counter scalars (0 fence, 1 hier, 2 naive)."""
        return {BarrierKind.FENCE: 0, BarrierKind.HIERARCHICAL: 1,
                BarrierKind.NAIVE_ATOMIC: 2}[self.kind]


NAIVE_ATOMIC = BarrierModel(BarrierKind.NAIVE_ATOMIC)
HIERARCHICAL = BarrierModel(BarrierKind.HIERARCHICAL)
FENCE = BarrierModel(BarrierKind.FENCE)
