"""Virtual GPU substrate.

A bulk-synchronous simulated device standing in for the paper's Tesla
C2070: launch geometry and occupancy (:mod:`.device`), atomics with
simulated race orders (:mod:`.atomics`), global-barrier cost models
(:mod:`.sync`), device memory / chunk / recycle allocators
(:mod:`.memory`), kernel launch bookkeeping and an SPMD generator-thread
executor (:mod:`.kernel`), the counts-to-seconds cost model
(:mod:`.costmodel`), and the sanitizer/tracer hook point every primitive
reports through (:mod:`.instrument`, consumed by :mod:`repro.analysis`
and :mod:`repro.obs`).
"""

from .device import CpuSpec, GpuSpec, LaunchConfig, TESLA_C2070, XEON_E7540
from .sync import BarrierKind, BarrierModel, FENCE, HIERARCHICAL, NAIVE_ATOMIC
from .memory import ChunkAllocator, ChunkList, DeviceAllocator, RecyclePool
from .kernel import KernelLauncher, spmd_launch
from .costmodel import CostModel, ModeledTimes
from .streams import (StreamSchedule, StreamSlot, VirtualStream,
                      partition_streams, schedule_streams, stream_time)
from .instrument import (SanitizerHooks, TracerHooks, activate,
                         activate_tracer, current_sanitizer, current_tracer,
                         maybe_activate, maybe_activate_tracer, record_read,
                         record_write, trace_gauge, trace_launch, trace_span)
from . import atomics, instrument

__all__ = [
    "CpuSpec", "GpuSpec", "LaunchConfig", "TESLA_C2070", "XEON_E7540",
    "BarrierKind", "BarrierModel", "FENCE", "HIERARCHICAL", "NAIVE_ATOMIC",
    "ChunkAllocator", "ChunkList", "DeviceAllocator", "RecyclePool",
    "KernelLauncher", "spmd_launch", "CostModel", "ModeledTimes", "atomics",
    "VirtualStream", "StreamSlot", "StreamSchedule", "partition_streams",
    "schedule_streams", "stream_time",
    "SanitizerHooks", "activate", "current_sanitizer", "maybe_activate",
    "record_read", "record_write", "instrument",
    "TracerHooks", "activate_tracer", "current_tracer",
    "maybe_activate_tracer", "trace_span", "trace_launch", "trace_gauge",
]
