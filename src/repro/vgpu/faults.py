"""Deterministic device-level fault injection for the virtual GPU.

:mod:`repro.serve.faults` kills and delays *jobs*; this module fails
the *device* — the §7 failure surfaces the paper's strategies exist to
survive: allocator OOM, §7.1 chunk-pool exhaustion, transient kernel
aborts, and slow host transfers.  A :class:`DeviceFaultPlan` is plain,
seeded data (JSON- and pickle-able, like ``serve.FaultPlan``) and
materializes into a :class:`DeviceFaultInjector` — a
:class:`~repro.vgpu.instrument.FaultHooks` client installed with
:func:`repro.vgpu.instrument.activate_faults`, so it composes with the
sanitizer and tracer registries.

Determinism is the whole design: a fault fires as a pure function of
the plan and the injector's own event counters — *which* malloc, *which*
launch of *which* kernel — never of wall-clock time or any shared RNG.
``rate``-based rules use a counter-indexed hash (splitmix64 finalizer)
of ``(seed, kind, event index)``, so the same plan fails the same
events on every run, and a run whose faults are all absorbed by
:mod:`repro.resilience` produces a byte-identical result digest.

Example::

    plan = DeviceFaultPlan.of(
        DeviceFaultRule("kernel_abort", kernel="refine.apply", at=(2,)),
        DeviceFaultRule("oom", rate=0.05, seed=7),
    )
    with plan.injector().activate() as inj:
        refine_gpu(mesh, cfg, resilience=Resilience())
    assert inj.fired["kernel_abort"] == 1
"""

from __future__ import annotations

import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import (ChunkPoolExhausted, KernelAborted, OutOfDeviceMemory,
                      RecyclePoolExhausted)
from . import instrument

__all__ = ["FAULT_KINDS", "DeviceFaultRule", "DeviceFaultPlan",
           "DeviceFaultInjector"]

#: fault kind -> the hook it arms (see :class:`instrument.FaultHooks`)
FAULT_KINDS = ("oom", "chunk_exhausted", "pool_exhausted",
               "kernel_abort", "slow_transfer")


def _hash01(seed: int, kind: str, index: int) -> float:
    """Deterministic uniform-ish value in [0, 1) for event ``index``.

    A splitmix64 finalizer over (seed, kind, index) — no RNG object, no
    shared state, so rate-based rules cannot perturb the run's own
    random stream.  ``kind`` is folded with crc32 (NOT ``hash()``,
    whose per-process salt would make worker processes disagree).
    """
    x = (seed * 0x9E3779B97F4A7C15 + zlib.crc32(kind.encode())
         + index * 0xBF58476D1CE4E5B9)
    x &= 0xFFFFFFFFFFFFFFFF
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    x ^= x >> 31
    return x / 2.0 ** 64


@dataclass(frozen=True)
class DeviceFaultRule:
    """One seeded fault rule.

    ``kind``
        One of :data:`FAULT_KINDS`.
    ``at``
        1-based event indices the rule fires on (counted per kind, and
        per kernel name when ``kernel`` is set).  Empty = use ``rate``.
    ``rate``
        Probability-like deterministic firing rate in [0, 1]; event
        ``i`` fires iff ``hash01(seed, kind, i) < rate``.
    ``kernel``
        For ``kernel_abort``: only launches whose name equals (or, with
        a trailing ``*``, starts with) this string are counted/failed.
    ``delay_s``
        For ``slow_transfer``: wall-clock seconds to sleep per firing.
    """

    kind: str
    at: tuple[int, ...] = ()
    rate: float = 0.0
    seed: int = 0
    kernel: str | None = None
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown device-fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        object.__setattr__(self, "at", tuple(int(a) for a in self.at))

    def fires(self, index: int) -> bool:
        """Does this rule fire on (1-based) event ``index`` of its kind?"""
        if self.at:
            return index in self.at
        if self.rate <= 0.0:
            return False
        return _hash01(self.seed, self.kind, index) < self.rate

    def to_dict(self) -> dict:
        d = {"kind": self.kind}
        if self.at:
            d["at"] = list(self.at)
        if self.rate:
            d["rate"] = self.rate
        if self.seed:
            d["seed"] = self.seed
        if self.kernel is not None:
            d["kernel"] = self.kernel
        if self.delay_s:
            d["delay_s"] = self.delay_s
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "DeviceFaultRule":
        return cls(kind=d["kind"], at=tuple(d.get("at", ())),
                   rate=float(d.get("rate", 0.0)),
                   seed=int(d.get("seed", 0)),
                   kernel=d.get("kernel"),
                   delay_s=float(d.get("delay_s", 0.0)))


@dataclass(frozen=True)
class DeviceFaultPlan:
    """A set of :class:`DeviceFaultRule`\\ s — one job's device weather."""

    rules: tuple[DeviceFaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def of(cls, *rules: DeviceFaultRule) -> "DeviceFaultPlan":
        return cls(rules=rules)

    def to_dict(self) -> dict:
        return {"rules": [r.to_dict() for r in self.rules]}

    @classmethod
    def from_dict(cls, d: Mapping) -> "DeviceFaultPlan":
        return cls(rules=tuple(DeviceFaultRule.from_dict(r)
                               for r in d.get("rules", ())))

    def injector(self) -> "DeviceFaultInjector":
        return DeviceFaultInjector(self)


class DeviceFaultInjector(instrument.FaultHooks):
    """A :class:`DeviceFaultPlan` bound to one run.

    Keeps per-kind (and, for kernel rules, per-kernel-name) event
    counters; ``fired`` tallies what actually went off, for assertions
    and gauges.  Counters are the injector's own — create a fresh
    injector per attempt, exactly like ``serve.FaultInjector``.
    """

    def __init__(self, plan: DeviceFaultPlan) -> None:
        self.plan = plan
        self.events: dict[str, int] = dict.fromkeys(FAULT_KINDS, 0)
        self.kernel_events: dict[str, int] = {}
        self.fired: dict[str, int] = dict.fromkeys(FAULT_KINDS, 0)

    # -- bookkeeping ----------------------------------------------- #

    def _rules(self, kind: str) -> Iterable[DeviceFaultRule]:
        return (r for r in self.plan.rules if r.kind == kind)

    def _bump(self, kind: str) -> int:
        self.events[kind] += 1
        return self.events[kind]

    def _note_fired(self, kind: str) -> None:
        self.fired[kind] += 1
        instrument.trace_gauge(f"faults.{kind}", self.fired[kind])

    # -- FaultHooks ------------------------------------------------- #

    def on_malloc(self, nbytes: int) -> None:
        idx = self._bump("oom")
        for rule in self._rules("oom"):
            if rule.fires(idx):
                self._note_fired("oom")
                raise OutOfDeviceMemory(
                    f"injected device OOM (malloc event {idx}, "
                    f"{nbytes} bytes)", requested=nbytes, unit="bytes",
                    injected=True)

    def on_chunk_alloc(self) -> None:
        idx = self._bump("chunk_exhausted")
        for rule in self._rules("chunk_exhausted"):
            if rule.fires(idx):
                self._note_fired("chunk_exhausted")
                raise ChunkPoolExhausted(
                    f"injected chunk-pool exhaustion (chunk event {idx})",
                    requested=1, available=0, unit="chunks", injected=True)

    def on_pool_release(self, n: int) -> None:
        idx = self._bump("pool_exhausted")
        for rule in self._rules("pool_exhausted"):
            if rule.fires(idx):
                self._note_fired("pool_exhausted")
                raise RecyclePoolExhausted(
                    f"injected recycle-pool exhaustion (release event "
                    f"{idx}, {n} slots)", requested=n, available=0,
                    unit="slots", injected=True)

    def on_kernel_launch(self, name: str) -> None:
        idx = self._bump("kernel_abort")
        bumped: set[str] = set()
        for rule in self._rules("kernel_abort"):
            if rule.kernel is None:
                rule_idx = idx
            elif self._kernel_match(rule.kernel, name):
                key = rule.kernel
                if key not in bumped:       # once per launch, not per rule
                    bumped.add(key)
                    self.kernel_events[key] = \
                        self.kernel_events.get(key, 0) + 1
                rule_idx = self.kernel_events[key]
            else:
                continue
            if rule.fires(rule_idx):
                self._note_fired("kernel_abort")
                raise KernelAborted(kernel=name, event=rule_idx,
                                    injected=True)

    def on_transfer(self, words: int) -> None:
        idx = self._bump("slow_transfer")
        for rule in self._rules("slow_transfer"):
            if rule.fires(idx):
                self._note_fired("slow_transfer")
                if rule.delay_s > 0.0:
                    time.sleep(rule.delay_s)

    @staticmethod
    def _kernel_match(pattern: str, name: str) -> bool:
        if pattern.endswith("*"):
            return name.startswith(pattern[:-1])
        return name == pattern

    # -- convenience ------------------------------------------------ #

    @contextmanager
    def activate(self):
        """Install this injector via the instrument registry."""
        with instrument.activate_faults(self):
            yield self
