"""Kernel launch machinery for the virtual GPU.

Two execution styles coexist, mirroring how the repository is built:

* **Vectorized kernels** — production path.  A "kernel" is ordinary NumPy
  array code; :class:`KernelLauncher` wraps it with launch-geometry
  bookkeeping and records the launch in an :class:`OpCounter`.  All four
  morph algorithms use this path.

* **SPMD generator kernels** — a faithful per-thread executor used by
  tests, examples and the conflict-resolution engine's reference
  implementation.  A thread function is a Python *generator*; every
  ``yield`` is a global barrier.  Between barriers, live threads execute
  their code segments in a *randomly shuffled order*, which exposes
  exactly the races the paper's Section 7.3 reasons about (e.g. the
  two-phase race-and-prioritycheck bug).  See :func:`spmd_launch`.
"""

from __future__ import annotations

import inspect
from typing import Callable

import numpy as np

from ..core.counters import OpCounter
from ..errors import MaxRoundsExceeded
from .device import GpuSpec, LaunchConfig, TESLA_C2070
from .instrument import (current_sanitizer, current_tracer, fault_kernel,
                         trace_span)

__all__ = ["KernelLauncher", "spmd_launch"]


class KernelLauncher:
    """Bookkeeping wrapper for vectorized kernels.

    Example::

        launcher = KernelLauncher(counter, LaunchConfig(112, 256))
        with launcher.launch("refine") as rec:
            ...numpy passes...
            rec(items=n_bad, aborted=n_conflicts, atomics=3 * cavity_tris,
                word_reads=..., word_writes=..., barriers=2,
                work_per_thread=cavity_sizes)
    """

    def __init__(self, counter: OpCounter, config: LaunchConfig,
                 spec: GpuSpec = TESLA_C2070) -> None:
        self.counter = counter
        self.config = config
        self.spec = spec
        # Record geometry so the cost model can price barriers correctly.
        counter.scalars.setdefault("cfg_blocks", config.blocks)
        counter.scalars.setdefault("cfg_tpb", config.threads_per_block)
        tr = current_tracer()
        if tr is not None:
            tr.on_geometry(config.blocks, config.threads_per_block)

    def launch(self, name: str):
        return _LaunchRecorder(self, name)

    def record(self, name: str, **kwargs) -> None:
        """One-shot launch record (no context manager)."""
        kwargs.setdefault("warp_size", self.spec.warp_size)
        self.counter.launch(name, **kwargs)


class _LaunchRecorder:
    def __init__(self, launcher: KernelLauncher, name: str) -> None:
        self._launcher = launcher
        self._name = name
        self._recorded = False

    def __enter__(self):
        # The device-fault site: an active injector may refuse the
        # launch here with a (retryable) KernelAborted, before the
        # kernel body runs or the launch is recorded.
        fault_kernel(self._name)
        return self

    def __call__(self, **kwargs) -> None:
        kwargs.setdefault("warp_size", self._launcher.spec.warp_size)
        self._launcher.counter.launch(self._name, **kwargs)
        self._recorded = True

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None and not self._recorded:
            # An empty launch still pays the dispatch overhead.
            self._launcher.counter.launch(self._name)
        return False


def spmd_launch(
    n_threads: int,
    thread_fn: Callable,
    *args,
    rng: np.random.Generator | None = None,
    counter: OpCounter | None = None,
    name: str = "spmd",
    max_phases: int = 1_000_000,
) -> int:
    """Execute ``thread_fn(tid, *args)`` for every thread id, SPMD-style.

    ``thread_fn`` may be a plain function (runs to completion in one
    phase) or a generator function, in which case each ``yield``
    corresponds to a device-wide barrier: all threads complete their
    current segment before any thread starts the next one.  Within a
    phase, thread order is shuffled with ``rng`` so that racy writes have
    nondeterministic winners, as on hardware.

    Returns the number of barrier phases executed.  Raises ``RuntimeError``
    if ``max_phases`` is exceeded (a deadlock guard for tests).

    When a sanitizer is active (:mod:`repro.vgpu.instrument`), every
    barrier is reported to it (so racy same-phase accesses are grouped
    correctly) and the per-thread barrier counts are handed to its
    barrier-divergence checker at kernel exit.  Threads reaching
    different barrier counts are *legal* in this executor (the global
    barrier simply stops waiting for finished threads) but correspond to
    the classic ``__syncthreads`` divergence bug on real hardware, so
    the checker reports them as findings rather than raising.
    """
    rng = rng or np.random.default_rng()  # sta: ignore[STA204] caller-controlled test fallback
    fault_kernel(name)
    san = current_sanitizer()
    if not inspect.isgeneratorfunction(thread_fn):
        if san is not None:
            san.on_kernel_begin(name, threads=n_threads)
        with trace_span(name, cat="kernel.spmd", threads=n_threads):
            order = rng.permutation(n_threads)
            for tid in order:
                thread_fn(int(tid), *args)
            if san is not None:
                san.on_kernel_end(name)
            if counter is not None:
                counter.launch(name, items=n_threads, barriers=0)
        return 1

    if san is not None:
        san.on_kernel_begin(name, threads=n_threads)
    with trace_span(name, cat="kernel.spmd", threads=n_threads):
        gens = [thread_fn(tid, *args) for tid in range(n_threads)]
        live = list(range(n_threads))
        barrier_counts = np.zeros(n_threads, dtype=np.int64)
        phases = 0
        try:
            while live:
                phases += 1
                if phases > max_phases:
                    raise MaxRoundsExceeded(
                        "spmd_launch exceeded max_phases (deadlock?)",
                        rounds=phases)
                order = rng.permutation(len(live))
                survivors = []
                for k in order:
                    idx = live[k]
                    try:
                        next(gens[idx])
                        survivors.append(idx)
                    except StopIteration:
                        pass
                live = survivors
                if live and san is not None:
                    san.on_barrier()
                barrier_counts[survivors] += 1
        finally:
            if san is not None:
                san.on_spmd_barriers(name, barrier_counts)
                san.on_kernel_end(name)
        if counter is not None:
            counter.launch(name, items=n_threads, barriers=phases - 1)
    return phases
