"""Counts -> modeled seconds.

The reproduction cannot run CUDA, so every implementation records what it
*did* (work items, aborted items, memory words, atomics, kernel launches,
barrier crossings, warp divergence) in an :class:`~repro.core.counters.OpCounter`,
and this module converts those counts into modeled execution times on the
paper's hardware (Tesla C2070 GPU, 48-core Xeon E7540 host).

Design rules, to keep the model honest:

* **One global cost table.**  Per-operation cycle costs live in
  :class:`GpuSpec`/:class:`CpuSpec` and the two constants below; no
  benchmark tunes them.  Relative results (who wins, crossovers) must
  emerge from the measured counts.
* **Throughput model.**  A kernel's compute time is its issued SIMD
  lane-steps divided by the device's lanes; its memory time is word
  traffic divided by bandwidth; the two overlap (max), as on real GPUs.
  Atomics are serialized per memory partition, barriers cost per
  crossing according to the selected :class:`~repro.vgpu.sync.BarrierModel`.
* **Divergence is already in the counts**: ``issued_lane_steps`` includes
  idle lanes of divergent warps (see :func:`repro.core.counters.warp_divergence`).

The CPU model has no SIMD penalty (``useful_lane_steps``), adds a
per-item scheduler cost (Galois worklists), and pays one barrier per
round for bulk-synchronous emulations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.counters import OpCounter
from .device import CpuSpec, GpuSpec, TESLA_C2070, XEON_E7540
from .sync import BarrierModel, HIERARCHICAL

__all__ = ["CostModel", "ModeledTimes", "GPU_CYCLES_PER_STEP",
           "CPU_CYCLES_PER_STEP", "COST_MODEL_VERSION"]

#: Bumped whenever the pricing rules or constants change in a way that
#: invalidates previously modeled times.  :mod:`repro.tune` keys its
#: persistent tuning cache on this, so stale tunings are re-searched
#: rather than silently reused against a different cost model.
COST_MODEL_VERSION = 1

#: Modeled cycles per unit work step on a GPU lane (in-order, dual-issue).
GPU_CYCLES_PER_STEP = 12.0
#: Modeled cycles per unit work step on a CPU core (superscalar, OoO).
CPU_CYCLES_PER_STEP = 5.0
#: Number of independent atomic units (memory partitions) on the GPU.
GPU_ATOMIC_UNITS = 6


@dataclass(frozen=True)
class ModeledTimes:
    """Times (seconds) for the three platforms the paper compares."""

    gpu: float = float("nan")
    cpu_parallel: float = float("nan")
    serial: float = float("nan")

    @property
    def gpu_speedup_vs_serial(self) -> float:
        return self.serial / self.gpu

    @property
    def gpu_speedup_vs_parallel(self) -> float:
        return self.cpu_parallel / self.gpu

    @property
    def parallel_speedup_vs_serial(self) -> float:
        return self.serial / self.cpu_parallel


class CostModel:
    """Convert :class:`OpCounter` tallies to modeled seconds."""

    def __init__(self, gpu: GpuSpec = TESLA_C2070, cpu: CpuSpec = XEON_E7540,
                 barrier: BarrierModel = HIERARCHICAL) -> None:
        self.gpu = gpu
        self.cpu = cpu
        self.barrier = barrier

    # ------------------------------------------------------------------ #
    def gpu_time(self, counter: OpCounter, *, blocks: int | None = None,
                 threads_per_block: int = 256,
                 barrier: BarrierModel | None = None) -> float:
        """Modeled GPU seconds for everything recorded in ``counter``.

        ``blocks``/``threads_per_block`` describe the launch geometry used
        for barrier costs; kernels that recorded their own geometry via
        the scalars ``cfg_blocks``/``cfg_tpb`` override the defaults.
        """
        spec = self.gpu
        bar = barrier or self.barrier
        # Kernels may record which barrier scheme they used (0 = fence,
        # 1 = hierarchical, 2 = naive-atomic); that wins over defaults.
        kind = counter.scalars.get("barrier_kind")
        if barrier is None and kind is not None:
            from .sync import FENCE, HIERARCHICAL as HIER, NAIVE_ATOMIC
            bar = (FENCE, HIER, NAIVE_ATOMIC)[int(kind)]
        if blocks is None:
            blocks = spec.num_sms * 8
        blocks = int(counter.scalars.get("cfg_blocks", blocks))
        threads_per_block = int(counter.scalars.get("cfg_tpb", threads_per_block))
        # fp_scale < 1 models single-precision arithmetic (Fermi FP32
        # issues at twice the FP64 rate) — recorded by the kernel itself.
        fp_scale = float(counter.scalars.get("fp_scale", 1.0))
        cycles = 0.0
        for _, ks in counter:
            cycles += ks.launches * spec.kernel_launch_cycles
            throughput = (ks.issued_lane_steps * GPU_CYCLES_PER_STEP
                          * fp_scale / spec.total_cores)
            # A launch cannot beat its slowest thread (critical path):
            # one lane executes its steps serially at the core clock.
            critical = ks.critical_lane_steps * GPU_CYCLES_PER_STEP * fp_scale
            compute = max(throughput, critical)
            words = ks.word_reads + ks.word_writes
            mem = words / spec.words_per_clock
            cycles += max(compute, mem)
            # Atomics: serialized within each memory partition.
            cycles += ks.atomics * spec.atomic_cycles / (
                GPU_ATOMIC_UNITS * spec.cores_per_sm)
            cycles += ks.barriers * bar.cycles(spec, blocks, threads_per_block)
        # Host-driven reallocations: device-to-device copy traffic plus a
        # dispatch per cudaMalloc/cudaFree pair.
        cycles += counter.scalars.get("realloc_words", 0.0) / spec.words_per_clock
        cycles += counter.scalars.get("reallocs", 0.0) * spec.kernel_launch_cycles
        # In-kernel device-heap allocations (the Kernel-Only strategy and
        # DMR's on-demand mode): ~2k cycles per malloc, serialized on the
        # heap lock in groups.
        cycles += counter.scalars.get("kernel_mallocs", 0.0) * 2_000
        cycles += counter.scalars.get("pta.chunks_malloced", 0.0) * 2_000
        seconds = cycles / spec.clock_hz
        # Explicit host<->device transfers (Fig. 3's cudaMemcpy calls).
        xfer_words = counter.scalars.get("h2d_words", 0.0) + \
            counter.scalars.get("d2h_words", 0.0)
        xfer_calls = counter.scalars.get("xfer_calls", 0.0)
        seconds += xfer_words / spec.pcie_words_per_s
        seconds += xfer_calls * spec.pcie_latency_s
        return seconds

    def _cpu_word_cycles(self) -> float:
        """Average cycles per word on the host, mixing hits and misses."""
        spec = self.cpu
        return ((1.0 - spec.miss_fraction) * spec.cached_mem_cycles
                + spec.miss_fraction * spec.mem_cycles)

    # ------------------------------------------------------------------ #
    def cpu_time(self, counter: OpCounter, threads: int = 48,
                 *, scheduler: bool = True) -> float:
        """Modeled multicore seconds with ``threads`` worker threads."""
        spec = self.cpu
        p = min(threads, spec.cores)
        cycles = spec.startup_cycles if (p > 1 and scheduler) else 0.0
        for _, ks in counter:
            compute = ks.useful_lane_steps * CPU_CYCLES_PER_STEP / p
            words = ks.word_reads + ks.word_writes
            mem = words * self._cpu_word_cycles() / p
            cycles += compute + mem
            cycles += ks.atomics * spec.atomic_cycles / max(1, p // 4)
            if p > 1:
                cycles += ks.barriers * spec.barrier_cycles
            if scheduler:
                cycles += ks.items * spec.sched_cycles / p
        return cycles / spec.clock_hz

    def serial_time(self, counter: OpCounter) -> float:
        """Modeled single-thread seconds (no scheduler, no barriers)."""
        spec = self.cpu
        cycles = 0.0
        for _, ks in counter:
            cycles += ks.useful_lane_steps * CPU_CYCLES_PER_STEP
            words = ks.word_reads + ks.word_writes
            cycles += words * self._cpu_word_cycles()
            cycles += ks.atomics * spec.cached_mem_cycles
        return cycles / spec.clock_hz

    # ------------------------------------------------------------------ #
    def times(self, gpu_counter: OpCounter, cpu_counter: OpCounter,
              serial_counter: OpCounter, *, threads: int = 48,
              **gpu_kwargs) -> ModeledTimes:
        """Bundle the three modeled times for one experiment row."""
        return ModeledTimes(
            gpu=self.gpu_time(gpu_counter, **gpu_kwargs),
            cpu_parallel=self.cpu_time(cpu_counter, threads),
            serial=self.serial_time(serial_counter),
        )
