"""Device memory management (paper Sections 7.1 and 7.2).

Three allocators model the strategies the paper distinguishes:

* :class:`DeviceAllocator` — the host-side heap (``cudaMalloc`` /
  ``cudaFree`` / ``cudaRealloc`` via copy).  Used by the Pre-allocation,
  Host-Only and Kernel-Host addition strategies; tracks bytes in use,
  high-water mark, allocation/copy counts so the addition-strategy
  ablation can compare overheads.

* :class:`ChunkAllocator` — the paper's Kernel-Only strategy: in-kernel
  ``malloc`` of fixed-size *chunks* that are linked into per-node lists.
  PTA uses it for dynamically growing incoming-edge lists ("Each node
  maintains a linked list of chunks of incoming neighbors", Section 7.1);
  chunk sizes of 512–4096 worked best in the paper.

* :class:`RecyclePool` — the Recycle deletion strategy (Section 7.2):
  deleted element slots are kept on a free list and handed back to
  subsequent additions, trading compaction cost against reuse.  DMR uses
  it for triangle slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import RecyclePoolExhausted
from .instrument import current_sanitizer, fault_chunk, fault_malloc, fault_pool

__all__ = ["DeviceAllocator", "ChunkList", "ChunkAllocator", "RecyclePool"]


class DeviceAllocator:
    """Host-driven device heap with realloc-by-copy accounting.

    Allocations and frees are reported to the active sanitizer (if any),
    which uses the extents for out-of-bounds checking and the free events
    for use-after-free / double-free detection.
    """

    def __init__(self) -> None:
        self.bytes_in_use = 0
        self.high_water = 0
        self.mallocs = 0
        self.frees = 0
        self.bytes_copied = 0

    def malloc(self, shape, dtype=np.int64, fill=None) -> np.ndarray:
        """Allocate a device array (``cudaMalloc``).

        An active fault injector may refuse the request by raising
        :class:`repro.errors.OutOfDeviceMemory` — before any accounting
        mutates, so an absorbed fault leaves the allocator consistent.
        """
        arr = np.empty(shape, dtype=dtype)
        fault_malloc(arr.nbytes)
        if fill is not None:
            arr.fill(fill)
        self.mallocs += 1
        self.bytes_in_use += arr.nbytes
        self.high_water = max(self.high_water, self.bytes_in_use)
        san = current_sanitizer()
        if san is not None:
            san.on_alloc(arr)
        return arr

    def free(self, arr: np.ndarray) -> None:
        """Release a device array (``cudaFree``)."""
        self.frees += 1
        self.bytes_in_use -= arr.nbytes
        san = current_sanitizer()
        if san is not None:
            san.on_free(arr)

    def realloc(self, arr: np.ndarray, new_len: int, fill=None) -> np.ndarray:
        """Grow ``arr`` (axis 0) to ``new_len`` rows: malloc + copy + free.

        This is the Host-Only / Kernel-Host growth path; the copy traffic
        is what the over-allocation factor amortizes.
        """
        if new_len <= arr.shape[0]:
            return arr
        shape = (new_len,) + arr.shape[1:]
        out = self.malloc(shape, dtype=arr.dtype, fill=fill)
        out[: arr.shape[0]] = arr
        self.bytes_copied += arr.nbytes
        self.free(arr)
        return out


@dataclass
class ChunkList:
    """A per-node linked list of sorted index chunks (Kernel-Only storage).

    Semantically a growable sorted set of node IDs.  ``chunks`` holds
    references into the allocator's chunk pool; ``counts`` how many slots
    of each chunk are used.  Lookups exploit per-chunk sorting, as the
    paper sorts chunk contents by ID "to enable efficient lookups".
    """

    chunks: list = field(default_factory=list)
    counts: list = field(default_factory=list)

    def __len__(self) -> int:
        return sum(self.counts)

    def to_array(self) -> np.ndarray:
        """All stored IDs (concatenation of used chunk prefixes)."""
        if not self.chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([c[:n] for c, n in zip(self.chunks, self.counts)])

    def contains(self, value: int) -> bool:
        for c, n in zip(self.chunks, self.counts):
            pos = int(np.searchsorted(c[:n], value))
            if pos < n and c[pos] == value:
                return True
        return False


class ChunkAllocator:
    """In-kernel chunked allocator for dynamically growing neighbor lists.

    ``chunk_size`` is the paper's tunable (512–4096 best in their runs;
    default 1024).  Chunking "reduces the frequency of memory allocation
    at the cost of some internal fragmentation".
    """

    def __init__(self, chunk_size: int = 1024) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.chunks_allocated = 0
        self.slots_used = 0

    def new_list(self) -> ChunkList:
        return ChunkList()

    def _new_chunk(self) -> np.ndarray:
        """One in-kernel chunk malloc; the fault site for §7.1
        chunk-pool exhaustion (:class:`repro.errors.ChunkPoolExhausted`)."""
        fault_chunk()
        self.chunks_allocated += 1
        return np.empty(self.chunk_size, dtype=np.int64)

    def insert_many(self, lst: ChunkList, values: np.ndarray) -> int:
        """Insert ``values`` (deduplicating against existing content).

        Returns the number of genuinely new IDs stored.  Insertion keeps
        each chunk individually sorted by merging new IDs into the tail
        chunk and spilling into fresh chunks as needed.

        The operation is *atomic with respect to allocation failure*:
        every fresh chunk the insert needs is acquired before the list
        is touched, so a :class:`~repro.errors.ChunkPoolExhausted`
        raised mid-request leaves ``lst`` (and the use counters) exactly
        as they were — the caller can fall back to another storage
        strategy and retry the same values.
        """
        values = np.unique(np.asarray(values, dtype=np.int64))
        if values.size == 0:
            return 0
        existing = lst.to_array()
        if existing.size:
            values = values[~np.isin(values, existing)]
        if values.size == 0:
            return 0
        added = int(values.size)
        room = (self.chunk_size - lst.counts[-1]
                if lst.chunks and lst.counts[-1] < self.chunk_size else 0)
        spill = max(0, added - room)
        fresh = [self._new_chunk()
                 for _ in range((spill + self.chunk_size - 1)
                                // self.chunk_size)]
        self.slots_used += added
        # Fill the tail chunk first, keeping it sorted.
        if room:
            tail, n = lst.chunks[-1], lst.counts[-1]
            take = values[:room]
            merged = np.sort(np.concatenate([tail[:n], take]))
            tail[: merged.size] = merged
            lst.counts[-1] = merged.size
            values = values[room:]
        # Spill remaining values into the pre-acquired fresh chunks.
        for chunk in fresh:
            take = values[: self.chunk_size]
            chunk[: take.size] = take  # already sorted
            lst.chunks.append(chunk)
            lst.counts.append(int(take.size))
            values = values[self.chunk_size :]
        return added

    @property
    def internal_fragmentation(self) -> float:
        """Unused fraction of allocated chunk slots."""
        total = self.chunks_allocated * self.chunk_size
        return 1.0 - self.slots_used / total if total else 0.0


class RecyclePool:
    """Free-list of recycled element slots (Recycle deletion strategy).

    ``capacity`` optionally bounds the free list (a device free-list is
    a fixed-size buffer); a :meth:`release` that would overflow it
    raises :class:`repro.errors.RecyclePoolExhausted` *before* mutating
    anything, which is the organic trigger for the §7.2
    Recycling -> Marking fallback in :mod:`repro.resilience`.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._free: list[int] = []
        self.recycled = 0
        self.reused = 0

    def release(self, slots) -> None:
        """Mark element slots as deleted and reusable."""
        slots = np.atleast_1d(np.asarray(slots, dtype=np.int64))
        fault_pool(int(slots.size))
        if (self.capacity is not None
                and len(self._free) + slots.size > self.capacity):
            raise RecyclePoolExhausted(
                requested=int(slots.size),
                available=self.capacity - len(self._free), unit="slots")
        self._free.extend(int(s) for s in slots)
        self.recycled += slots.size

    def acquire(self, n: int) -> np.ndarray:
        """Take up to ``n`` recycled slots (may return fewer)."""
        take = min(n, len(self._free))
        out = np.array([self._free.pop() for _ in range(take)], dtype=np.int64)
        self.reused += take
        return out

    def allocate(self, n: int, tail_start: int) -> tuple[np.ndarray, int]:
        """Exactly ``n`` slots: recycled first, then fresh tail slots.

        Returns ``(slots, new_tail)``; the caller grows its element
        arrays when ``new_tail`` exceeds their capacity.
        """
        recycled = self.acquire(n)
        fresh_needed = n - recycled.size
        fresh = np.arange(tail_start, tail_start + fresh_needed, dtype=np.int64)
        return np.concatenate([recycled, fresh]), tail_start + fresh_needed

    def __len__(self) -> int:
        return len(self._free)
