"""Virtual CUDA-style streams: space-sharing the simulated device.

The paper's experiments give each morph algorithm the whole Tesla C2070;
between global barriers most SMs idle whenever a round has little work
(the late-round tail of Fig. 2's parallelism profile).  A *serving*
workload — many independent morph jobs — can instead space-share the
device: each concurrently resident job runs in a virtual stream that
owns a slice of the SMs, so one job's launch overhead, barrier
crossings and critical-path waves overlap another job's compute.

The model here follows how concurrent kernels actually behave on a
space-partitioned device:

* **SMs partition.**  A stream with ``k`` of the device's ``S`` SMs
  prices compute throughput over ``k * cores_per_sm`` lanes, and its
  share of global-memory bandwidth scales to ``k / S`` (DRAM channels
  serve the whole chip; a fair-share split is the standard model).
* **Serial costs do not shrink.**  Kernel-launch cycles, per-crossing
  barrier latency and the critical-path lane (one thread's serial
  work) cost the same on 3 SMs as on 14 — this is exactly why
  multi-tenancy wins: those costs overlap across streams instead of
  serializing on an idle device.
* **Atomic units are shared.**  The L2 atomic units are a chip-wide
  resource, so atomic serialization is *not* scaled down with the
  partition (a stream cannot get more than the whole device's atomic
  throughput, and contention across streams is not modeled).

:func:`schedule_streams` then assigns a batch of per-job
:class:`~repro.core.counters.OpCounter` tallies to ``num_streams``
streams (FIFO arrival order, shortest-job-first, or longest-processing-
time) and reports per-stream times and the multi-tenant makespan — the
shared-device analogue of the Fig. 6-11 single-job modeled numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping, Sequence

from ..core.counters import OpCounter
from .costmodel import CostModel
from .device import GpuSpec, TESLA_C2070
from .sync import BarrierModel, HIERARCHICAL

__all__ = ["VirtualStream", "StreamSlot", "StreamSchedule",
           "partition_streams", "stream_time", "schedule_streams"]


@dataclass(frozen=True)
class VirtualStream:
    """One SM partition of a :class:`GpuSpec`, usable as a sub-device."""

    index: int
    num_sms: int
    #: the partitioned sub-device (reduced SMs, fair-share bandwidth)
    spec: GpuSpec
    #: the undivided device this stream was carved from
    parent: GpuSpec

    @property
    def sm_fraction(self) -> float:
        return self.num_sms / self.parent.num_sms


def partition_streams(spec: GpuSpec = TESLA_C2070,
                      num_streams: int = 2) -> list[VirtualStream]:
    """Split ``spec``'s SMs into ``num_streams`` near-equal partitions.

    Remainder SMs go to the lowest-indexed streams, so e.g. the C2070's
    14 SMs split 4 ways as 4/4/3/3.  ``num_streams`` must not exceed
    the SM count (an SM is the partition granule, as in MPS/MIG-style
    space sharing).
    """
    if not 1 <= num_streams <= spec.num_sms:
        raise ValueError(
            f"num_streams must be in [1, {spec.num_sms}] for {spec.name}")
    base, extra = divmod(spec.num_sms, num_streams)
    streams = []
    for i in range(num_streams):
        k = base + (1 if i < extra else 0)
        sub = replace(
            spec,
            name=f"{spec.name} [stream {i}: {k}/{spec.num_sms} SMs]",
            num_sms=k,
            words_per_clock=spec.words_per_clock * k / spec.num_sms,
        )
        streams.append(VirtualStream(index=i, num_sms=k, spec=sub,
                                     parent=spec))
    return streams


def stream_time(stream: VirtualStream, counter: OpCounter, *,
                barrier: BarrierModel = HIERARCHICAL) -> float:
    """Modeled seconds for one job's counts executed inside ``stream``.

    Delegates to :meth:`CostModel.gpu_time` with the stream's
    partitioned sub-spec, so per-kernel geometry scalars recorded in
    the counter (``cfg_blocks``, ``barrier_kind``, ``fp_scale``) are
    honored exactly as on the whole device.
    """
    return CostModel(gpu=stream.spec, barrier=barrier).gpu_time(counter)


@dataclass(frozen=True)
class StreamSlot:
    """One job's residency on one stream: ``[start, end)`` seconds."""

    job: str
    stream: int
    start: float
    end: float

    @property
    def seconds(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class StreamSchedule:
    """A placement of a job batch onto virtual streams."""

    streams: tuple[VirtualStream, ...]
    slots: tuple[StreamSlot, ...]
    #: total busy seconds per stream, by stream index
    stream_seconds: tuple[float, ...]
    #: whole-device sequential baseline (one job at a time, all SMs)
    serial_seconds: float
    policy: str

    @property
    def makespan(self) -> float:
        """Seconds until the last stream drains — the multi-tenant
        completion time for the whole batch."""
        return max(self.stream_seconds) if self.stream_seconds else 0.0

    @property
    def speedup_vs_serial(self) -> float:
        """How much sooner the batch finishes than running each job
        alone on the undivided device, one after another."""
        return self.serial_seconds / self.makespan if self.makespan else 1.0

    @property
    def mean_queue_delay(self) -> float:
        """Mean seconds jobs wait before their stream slot starts."""
        if not self.slots:
            return 0.0
        return sum(s.start for s in self.slots) / len(self.slots)

    def job_seconds(self) -> dict[str, float]:
        return {s.job: s.seconds for s in self.slots}


def _as_pairs(counters) -> list[tuple[str, OpCounter]]:
    if isinstance(counters, Mapping):
        return list(counters.items())
    return list(counters)


def schedule_streams(
    counters: Mapping[str, OpCounter] | Sequence[tuple[str, OpCounter]],
    *,
    spec: GpuSpec = TESLA_C2070,
    num_streams: int = 2,
    policy: str = "fifo",
    barrier: BarrierModel = HIERARCHICAL,
) -> StreamSchedule:
    """Place a batch of jobs onto ``num_streams`` virtual streams.

    ``counters`` maps job name to that job's recorded
    :class:`OpCounter` (insertion order = arrival order).  Policies:

    * ``"fifo"`` — arrival order; each job goes to the stream that
      frees up first (greedy list scheduling);
    * ``"sjf"`` — shortest job first (by whole-device modeled time),
      minimizing mean queue delay;
    * ``"lpt"`` — longest processing time first, the classic makespan
      heuristic.

    Per-job residency time is priced *on the stream it lands on* (a
    job on a 3-SM partition runs longer than on 4 SMs), so uneven
    partitions are modeled faithfully.
    """
    if policy not in ("fifo", "sjf", "lpt"):
        raise ValueError(f"unknown stream policy {policy!r}")
    pairs = _as_pairs(counters)
    streams = partition_streams(spec, num_streams)
    whole = CostModel(gpu=spec, barrier=barrier)
    base_time = {name: whole.gpu_time(ctr) for name, ctr in pairs}
    if policy == "sjf":
        pairs = sorted(pairs, key=lambda kv: (base_time[kv[0]], kv[0]))
    elif policy == "lpt":
        pairs = sorted(pairs, key=lambda kv: (-base_time[kv[0]], kv[0]))

    loads = [0.0] * num_streams
    slots: list[StreamSlot] = []
    for name, ctr in pairs:
        i = min(range(num_streams), key=lambda j: (loads[j], j))
        dur = stream_time(streams[i], ctr, barrier=barrier)
        slots.append(StreamSlot(job=name, stream=i, start=loads[i],
                                end=loads[i] + dur))
        loads[i] += dur
    return StreamSchedule(
        streams=tuple(streams),
        slots=tuple(slots),
        stream_seconds=tuple(loads),
        serial_seconds=sum(base_time.values()),
        policy=policy,
    )
