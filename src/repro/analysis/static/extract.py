"""AST extraction of per-kernel effect summaries (the analyzer front end).

The repository's kernels come in three syntactic idioms, all recognized
here without executing anything:

* **Launch-record regions** — the production pattern: a driver function
  runs vectorized NumPy passes and closes each kernel with a one-shot
  ``counter.launch("name", ..., barriers=N)`` record.  The statements
  since the previous record (in source order) form that kernel's body.
  Trailing statements after the last record belong to the last kernel.

* **Launch blocks** — ``with launcher.launch("name") as rec:`` blocks;
  the block body is the kernel body.

* **SPMD thread functions** — functions handed to
  :func:`repro.vgpu.kernel.spmd_launch`; every ``yield`` is a
  device-wide barrier, so the generator's yields split the summary into
  barrier intervals exactly as the executor would.

Within a body, device effects are recognized from the substrate's
vocabulary: ``scatter_write`` (plain concurrent store, with its
``intent=``), the ``atomic_*`` / ``fetch_add_serialized`` /
``atomic_cas_batch`` family (atomic updates), subscript loads/stores
(host-serialized reads/writes), allocator traffic
(``malloc``/``realloc``/``free``/``allocate``/``acquire``/``release``),
``*.on_barrier()`` markers, and determinism hazards (unseeded RNG,
iteration over unordered sets).

**Interprocedural propagation**: a call to a same-module helper
function is expanded in place — the helper's effects are substituted
into the caller with the helper's parameter names rewritten to the
caller's argument arrays (``_phase_read(marks, claims)`` contributes a
read of *the caller's* ``marks``).  Helpers that are themselves
kernel-bearing (contain launch records) or generators are summarized
separately, not inlined.  Expansion is depth-limited and cycle-safe.

Control flow inside a body is flattened in source order: the summary
over-approximates "effects that may happen", which is the right
direction for the race/lifetime rules and keeps manifests stable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from .model import (ACQUIRE, ATOMIC, READ, RELEASE, STORE, Access, Interval,
                    KernelSummary, RngEvent)

__all__ = ["ModuleModel", "Program", "analyze_paths", "dotted_name"]

#: device primitives modeling a plain concurrent (racy) store
SCATTER_FNS = {"scatter_write"}
#: device primitives modeling atomic read-modify-write batches
ATOMIC_FNS = {"atomic_add", "atomic_min", "atomic_max", "atomic_or",
              "atomic_cas_batch", "fetch_add_serialized"}
#: method names that end a kernel region with a launch record
MARKER_ATTRS = {"launch", "record"}
#: method names marking a device-wide barrier in vectorized code
BARRIER_ATTRS = {"on_barrier"}
#: allocator methods that return a handle / release one
ACQUIRE_ATTRS = {"malloc", "allocate", "acquire"}
RELEASE_ATTRS = {"free", "release"}
#: legacy ``np.random`` attributes that are *not* determinism hazards
_SEEDED_RNG_OK = {"default_rng", "Generator", "SeedSequence", "PCG64"}
#: helper-inlining depth bound (cycles are also guarded by name)
MAX_HELPER_DEPTH = 3


def dotted_name(node: ast.AST) -> str | None:
    """Dotted source name of an array expression (peeling subscripts)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    if isinstance(node, ast.Subscript):
        return dotted_name(node.value)
    return None


# --------------------------------------------------------------------- #
# event stream                                                          #
# --------------------------------------------------------------------- #
# A kernel body is summarized from a flat, source-ordered event stream.

@dataclass(frozen=True)
class _AccessEv:
    access: Access


@dataclass(frozen=True)
class _BarrierEv:
    line: int


@dataclass(frozen=True)
class _MarkerEv:
    """A ``counter.launch("name", ...)`` record ending a kernel region."""

    kernel: str
    line: int
    declared_barriers: int | None


@dataclass(frozen=True)
class _HelperEv:
    name: str
    line: int
    argmap: dict = field(hash=False, default_factory=dict)


@dataclass(frozen=True)
class _RngEv:
    event: RngEvent


@dataclass
class FunctionInfo:
    node: ast.FunctionDef
    qualname: str
    params: tuple[str, ...]
    str_defaults: dict[str, str]
    is_generator: bool
    stream: list = field(default_factory=list)
    has_markers: bool = False


def _is_launch_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "launch")


def _is_launch_with(stmt: ast.With) -> bool:
    return any(_is_launch_call(item.context_expr) for item in stmt.items)


class _ExprVisitor(ast.NodeVisitor):
    """Records effects of one expression tree onto the event stream."""

    def __init__(self, builder: "_StreamBuilder") -> None:
        self.b = builder

    def visit_Subscript(self, node: ast.Subscript) -> None:
        name = dotted_name(node.value)
        if name is not None:
            if isinstance(node.ctx, ast.Load):
                self.b.access(READ, name, node.lineno)
            else:
                self.b.access(STORE, name, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:  # noqa: C901
        self.b.handle_call(node)
        self.generic_visit(node)

    # Nested lambdas/comprehensions still contribute loads via
    # generic_visit; nested defs are handled at statement level.


class _StreamBuilder:
    """Builds the flat event stream for one statement list."""

    def __init__(self, module: "ModuleModel", fn: FunctionInfo | None) -> None:
        self.module = module
        self.fn = fn
        self.events: list = []
        self._expr = _ExprVisitor(self)

    # -- event emitters ------------------------------------------------ #
    def access(self, kind: str, array: str, line: int, *,
               concurrent: bool = False, intent: str = "") -> None:
        self.events.append(_AccessEv(Access(kind, array, line,
                                            concurrent=concurrent,
                                            intent=intent)))

    def rng(self, line: int, what: str) -> None:
        self.events.append(_RngEv(RngEvent(line, what)))

    # -- call vocabulary ----------------------------------------------- #
    def _call_tail(self, node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None

    def _const_kwarg(self, node: ast.Call, name: str):
        for kw in node.keywords:
            if kw.arg == name and isinstance(kw.value, ast.Constant):
                return kw.value.value
        return None

    def _marker_name(self, node: ast.Call) -> str:
        """Kernel name of a launch record: a constant string, a parameter
        whose default is a constant string, or ``<argname>``."""
        if not node.args:
            return "<launch>"
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.Name):
            if self.fn is not None and arg.id in self.fn.str_defaults:
                return self.fn.str_defaults[arg.id]
            return f"<{arg.id}>"
        return "<dynamic>"

    def handle_call(self, node: ast.Call) -> None:  # noqa: C901
        tail = self._call_tail(node)
        line = node.lineno
        if tail in SCATTER_FNS and node.args:
            dest = dotted_name(node.args[0])
            intent = self._const_kwarg(node, "intent") or "store"
            if dest:
                self.access(STORE, dest, line, concurrent=True, intent=intent)
            for extra in node.args[1:3]:
                name = dotted_name(extra)
                if name:
                    self.access(READ, name, line)
            return
        if tail in ATOMIC_FNS and node.args:
            dest = dotted_name(node.args[0])
            if dest:
                self.access(ATOMIC, dest, line, concurrent=True)
            for extra in node.args[1:3]:
                name = dotted_name(extra)
                if name:
                    self.access(READ, name, line)
            return
        if isinstance(node.func, ast.Attribute):
            if tail in MARKER_ATTRS:
                barriers = self._const_kwarg(node, "barriers")
                self.events.append(_MarkerEv(
                    self._marker_name(node), line,
                    barriers if isinstance(barriers, int) else None))
                return
            if tail in BARRIER_ATTRS:
                self.events.append(_BarrierEv(line))
                return
            if tail in RELEASE_ATTRS and node.args:
                name = dotted_name(node.args[0])
                if name:
                    self.access(RELEASE, name, line)
                return
            if tail == "realloc" and node.args:
                name = dotted_name(node.args[0])
                if name:
                    self.access(RELEASE, name, line)
                return
        self._check_rng_call(node, tail, line)
        if (isinstance(node.func, ast.Name)
                and node.func.id in self.module.functions):
            self.events.append(_HelperEv(node.func.id, line,
                                         self._argmap(node)))

    def _check_rng_call(self, node: ast.Call, tail: str | None,
                        line: int) -> None:
        if tail == "default_rng" and not node.args and not node.keywords:
            self.rng(line, "unseeded default_rng() — seed it from the "
                           "driver so runs are reproducible")
            return
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Attribute) and \
                func.value.attr == "random" and \
                isinstance(func.value.value, ast.Name) and \
                func.value.value.id in ("np", "numpy") and \
                func.attr not in _SEEDED_RNG_OK:
            self.rng(line, f"legacy global np.random.{func.attr}() draws "
                           "from hidden process-wide state")
        elif isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id == "random":
            self.rng(line, f"stdlib random.{func.attr}() draws from hidden "
                           "process-wide state")

    def _argmap(self, node: ast.Call) -> dict:
        """Map a helper's parameter names to caller argument arrays."""
        info = self.module.functions[node.func.id]  # type: ignore[union-attr]
        argmap: dict[str, str] = {}
        for param, arg in zip(info.params, node.args):
            name = dotted_name(arg)
            if name:
                argmap[param] = name
        for kw in node.keywords:
            if kw.arg and kw.arg in info.params:
                name = dotted_name(kw.value)
                if name:
                    argmap[kw.arg] = name
        return argmap

    # -- statement walk ------------------------------------------------ #
    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:  # noqa: C901
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested defs are not part of this body's flow
        if isinstance(stmt, ast.With):
            if _is_launch_with(stmt):
                return  # a launch block is its own kernel, not caller effects
            for item in stmt.items:
                self._expr.visit(item.context_expr)
            self.walk(stmt.body)
            return
        if isinstance(stmt, ast.Assign):
            self._expr.visit(stmt.value)
            self._acquire_targets(stmt)
            for target in stmt.targets:
                self._expr.visit(target)
            return
        if isinstance(stmt, ast.AugAssign):
            self._expr.visit(stmt.value)
            if isinstance(stmt.target, ast.Subscript):
                name = dotted_name(stmt.target.value)
                if name:
                    self.access(READ, name, stmt.lineno)
                    self.access(STORE, name, stmt.lineno)
            return
        if isinstance(stmt, (ast.Expr, ast.Return)) and stmt.value is not None:
            if isinstance(stmt.value, ast.Yield):
                self.events.append(_BarrierEv(stmt.lineno))
                if stmt.value.value is not None:
                    self._expr.visit(stmt.value.value)
            else:
                self._expr.visit(stmt.value)
            return
        if isinstance(stmt, ast.For):
            self._check_set_iteration(stmt)
            self._expr.visit(stmt.iter)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
            return
        for expr in ast.iter_child_nodes(stmt):
            if isinstance(expr, ast.expr):
                self._expr.visit(expr)
        for blk in ("body", "orelse", "finalbody"):
            self.walk(getattr(stmt, blk, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            self.walk(handler.body)

    def _acquire_targets(self, stmt: ast.Assign) -> None:
        """``h = alloc.malloc(...)`` / ``slots, tail = pool.allocate(...)``
        acquire the first bound name; ``h = alloc.realloc(h, ...)``
        re-acquires after the release recorded by the call walk."""
        call = stmt.value
        if not (isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr in ACQUIRE_ATTRS | {"realloc"}):
            return
        target = stmt.targets[0]
        if isinstance(target, ast.Tuple) and target.elts:
            target = target.elts[0]
        name = dotted_name(target) if isinstance(
            target, (ast.Name, ast.Attribute)) else None
        if name:
            self.access(ACQUIRE, name, stmt.lineno)

    def _check_set_iteration(self, stmt: ast.For) -> None:
        it = stmt.iter
        is_set = isinstance(it, ast.Set) or (
            isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
            and it.func.id in ("set", "frozenset"))
        if is_set:
            self.rng(stmt.lineno,
                     "iteration order over an unordered set depends on "
                     "PYTHONHASHSEED — sort it first")


# --------------------------------------------------------------------- #
# module + program models                                               #
# --------------------------------------------------------------------- #

class ModuleModel:
    """Parsed module: functions, raw event streams, kernel summaries."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: module-level functions reachable as helpers by bare name
        self.functions: dict[str, FunctionInfo] = {}
        #: every function (incl. methods), for the kernel-bearing scan
        self.all_functions: list[FunctionInfo] = []
        self.kernels: list[KernelSummary] = []
        self._collect_functions()
        for info in self.all_functions:
            builder = _StreamBuilder(self, info)
            builder.walk(info.node.body)
            info.stream = builder.events
            info.has_markers = any(isinstance(ev, _MarkerEv)
                                   for ev in info.stream)
        self._build_kernels()

    # -- discovery ----------------------------------------------------- #
    def _collect_functions(self) -> None:
        def walk(node: ast.AST, prefix: str, top: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}{child.name}"
                    info = FunctionInfo(
                        node=child, qualname=qual,
                        params=self._params(child),
                        str_defaults=self._str_defaults(child),
                        is_generator=self._is_generator(child))
                    self.all_functions.append(info)
                    if top:
                        self.functions[child.name] = info
                    walk(child, f"{qual}.", False)
                elif isinstance(child, ast.ClassDef):
                    walk(child, f"{prefix}{child.name}.", False)
        walk(self.tree, "", True)

    @staticmethod
    def _params(fn: ast.FunctionDef) -> tuple[str, ...]:
        a = fn.args
        return tuple(p.arg for p in [*a.posonlyargs, *a.args, *a.kwonlyargs])

    @staticmethod
    def _str_defaults(fn: ast.FunctionDef) -> dict[str, str]:
        out: dict[str, str] = {}
        a = fn.args
        pos = [*a.posonlyargs, *a.args]
        for param, default in zip(pos[len(pos) - len(a.defaults):],
                                  a.defaults):
            if isinstance(default, ast.Constant) and \
                    isinstance(default.value, str):
                out[param.arg] = default.value
        for param, default in zip(a.kwonlyargs, a.kw_defaults):
            if isinstance(default, ast.Constant) and \
                    isinstance(default.value, str):
                out[param.arg] = default.value
        return out

    @staticmethod
    def _is_generator(fn: ast.FunctionDef) -> bool:
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue  # nested defs have their own generator-ness
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            stack.extend(ast.iter_child_nodes(node))
        return False

    # -- helper expansion ---------------------------------------------- #
    def _expand(self, events: list, depth: int = 0,
                seen: tuple = (), via: str = "",
                argmap: dict | None = None,
                helpers: list | None = None) -> list:
        out: list = []
        for ev in events:
            if isinstance(ev, _HelperEv):
                if helpers is not None:
                    helpers.append(ev.name)
                info = self.functions.get(ev.name)
                if (info is None or info.has_markers or info.is_generator
                        or depth >= MAX_HELPER_DEPTH or ev.name in seen):
                    continue
                sub = self._expand(info.stream, depth + 1,
                                   seen + (ev.name,),
                                   via=f"{via}>{ev.name}" if via else ev.name,
                                   argmap=ev.argmap, helpers=helpers)
                out.extend(sub)
                continue
            if argmap is not None and isinstance(ev, _AccessEv):
                acc = ev.access
                head, _, rest = acc.array.partition(".")
                if head in argmap:
                    renamed = argmap[head] + (f".{rest}" if rest else "")
                    acc = Access(acc.kind, renamed, acc.line,
                                 concurrent=acc.concurrent,
                                 intent=acc.intent, via=via)
                else:
                    acc = Access(acc.kind, acc.array, acc.line,
                                 concurrent=acc.concurrent,
                                 intent=acc.intent, via=via)
                out.append(_AccessEv(acc))
                continue
            if argmap is not None and isinstance(ev, _RngEv):
                out.append(_RngEv(RngEvent(ev.event.line, ev.event.what,
                                           via=via)))
                continue
            out.append(ev)
        return out

    # -- summaries ------------------------------------------------------ #
    def _summary_from_events(self, events: list, *, qualname: str,
                             kernel: str, line: int, kind: str,
                             declared_barriers: int | None = None,
                             helpers: tuple[str, ...] = (),
                             generator: bool = False,
                             node: ast.AST | None = None) -> KernelSummary:
        intervals = [Interval(0)]
        rng_events: list[RngEvent] = []
        for ev in events:
            if isinstance(ev, _BarrierEv):
                intervals.append(Interval(len(intervals)))
            elif isinstance(ev, _AccessEv):
                intervals[-1].accesses.append(ev.access)
            elif isinstance(ev, _RngEv):
                rng_events.append(ev.event)
        return KernelSummary(path=self.path, qualname=qualname, kernel=kernel,
                             line=line, kind=kind, generator=generator,
                             intervals=intervals,
                             declared_barriers=declared_barriers,
                             helpers=helpers, rng_events=rng_events,
                             node=node)

    def _build_kernels(self) -> None:
        for info in self.all_functions:
            if info.has_markers:
                self._region_kernels(info)
            self._block_and_spmd_kernels(info)

    def _region_kernels(self, info: FunctionInfo) -> None:
        helpers: list[str] = []
        events = self._expand(info.stream, helpers=helpers)
        regions: list[tuple[_MarkerEv, list]] = []
        pending: list = []
        for ev in events:
            if isinstance(ev, _MarkerEv):
                regions.append((ev, pending))
                pending = []
            else:
                pending.append(ev)
        if pending and regions:
            regions[-1] = (regions[-1][0], regions[-1][1] + pending)
        for marker, body in regions:
            self.kernels.append(self._summary_from_events(
                body, qualname=info.qualname, kernel=marker.kernel,
                line=marker.line, kind="region",
                declared_barriers=marker.declared_barriers,
                helpers=tuple(helpers)))

    def _block_and_spmd_kernels(self, info: FunctionInfo) -> None:
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.With) and _is_launch_with(stmt):
                self._launch_block_kernel(info, stmt)
            elif isinstance(stmt, ast.Call) and self._is_spmd_call(stmt):
                self._spmd_kernel(info, stmt)

    def _launch_block_kernel(self, info: FunctionInfo,
                             stmt: ast.With) -> None:
        launch = next(item.context_expr for item in stmt.items
                      if _is_launch_call(item.context_expr))
        builder = _StreamBuilder(self, info)
        builder.walk(stmt.body)
        helpers: list[str] = []
        events = self._expand(builder.events, helpers=helpers)
        name = builder._marker_name(launch)  # noqa: SLF001 — same module
        self.kernels.append(self._summary_from_events(
            events, qualname=info.qualname, kernel=name, line=stmt.lineno,
            kind="launch-block", helpers=tuple(helpers)))

    @staticmethod
    def _is_spmd_call(node: ast.Call) -> bool:
        return ((isinstance(node.func, ast.Name)
                 and node.func.id == "spmd_launch")
                or (isinstance(node.func, ast.Attribute)
                    and node.func.attr == "spmd_launch"))

    def _spmd_kernel(self, info: FunctionInfo, call: ast.Call) -> None:
        if len(call.args) < 2 or not isinstance(call.args[1], ast.Name):
            return
        target = self.functions.get(call.args[1].id)
        if target is None:
            return
        name = target.node.name
        for kw in call.keywords:
            if kw.arg == "name" and isinstance(kw.value, ast.Constant):
                name = str(kw.value.value)
        helpers: list[str] = []
        events = self._expand(target.stream, helpers=helpers)
        self.kernels.append(self._summary_from_events(
            events, qualname=target.qualname, kernel=name,
            line=call.lineno, kind="spmd", helpers=tuple(helpers),
            generator=target.is_generator, node=target.node))


@dataclass
class Program:
    """Whole-program view handed to the rules: every parsed module, every
    kernel summary, and the files that failed to parse."""

    modules: list[ModuleModel] = field(default_factory=list)
    syntax_errors: list[tuple[str, int, str]] = field(default_factory=list)

    @property
    def kernels(self) -> list[KernelSummary]:
        out: list[KernelSummary] = []
        for mod in self.modules:
            out.extend(mod.kernels)
        # Disambiguate duplicate keys (same kernel name launched twice
        # from one function) so manifests stay one-entry-per-kernel.
        seen: dict[str, int] = {}
        uniq: list[KernelSummary] = []
        for k in sorted(out, key=lambda k: (k.path, k.line)):
            n = seen.get(k.key, 0)
            seen[k.key] = n + 1
            if n:
                k = KernelSummary(path=k.path, qualname=k.qualname,
                                  kernel=f"{k.kernel}#{n + 1}", line=k.line,
                                  kind=k.kind, generator=k.generator,
                                  intervals=k.intervals,
                                  declared_barriers=k.declared_barriers,
                                  helpers=k.helpers,
                                  rng_events=k.rng_events, node=k.node)
            uniq.append(k)
        return uniq


def analyze_paths(paths, *, root=None) -> Program:
    """Parse and summarize every ``*.py`` under ``paths``.

    Files that fail to parse are collected on
    :attr:`Program.syntax_errors` (path, line, message) rather than
    aborting the whole run — the CLI turns them into a distinct exit
    code so CI can tell "broken file" from "rule findings".
    """
    from pathlib import Path

    program = Program()
    files: list[Path] = []
    for p in paths:
        path = Path(p)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    for file in files:
        text = file.read_text(encoding="utf-8")
        rel = file
        if root is not None:
            try:
                rel = file.relative_to(root)
            except ValueError:
                rel = file
        try:
            program.modules.append(ModuleModel(rel.as_posix(), text))
        except SyntaxError as exc:
            program.syntax_errors.append(
                (rel.as_posix(), exc.lineno or 0, exc.msg or "syntax error"))
    return program
