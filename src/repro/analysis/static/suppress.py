"""Inline suppressions and the checked-in baseline file.

Two mechanisms keep the analyzer's exit code meaningful on a codebase
with *intended* single-writer patterns (the §7.3 two-phase demo, the
test-only unseeded-RNG fallback in ``spmd_launch``):

* **Inline pragmas** — ``# sta: ignore[STA201] reason`` on the finding
  line, on a standalone comment line directly above it (for calls too
  long to carry a trailing comment), or on the header line of the
  enclosing function / launch statement suppresses that rule there,
  with the reason kept as documentation.  Several codes may share one
  pragma: ``# sta: ignore[STA201,STA204] reason``.

* **Baseline file** — a JSON list of line-insensitive fingerprints
  (``path`` + ``code`` + kernel/array) for findings that are accepted
  debt.  CI passes ``--baseline .sta-baseline.json``; anything not in
  the baseline fails the build, so new findings cannot land silently
  while old ones are being paid down.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from .model import StaticFinding

__all__ = ["parse_pragmas", "apply_suppressions", "load_baseline",
           "apply_baseline", "write_baseline", "BASELINE_FORMAT"]

BASELINE_FORMAT = "repro.sta-baseline/1"

_PRAGMA = re.compile(r"#\s*sta:\s*ignore\[([A-Z0-9,\s]+)\]\s*(.*)$")


def parse_pragmas(source: str) -> dict[int, tuple[set[str], str]]:
    """line number -> (suppressed codes, reason).

    A pragma on a *standalone* comment line applies to the next line
    as well, so long calls can carry the pragma just above them.
    """
    out: dict[int, tuple[set[str], str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA.search(line)
        if not m:
            continue
        codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
        entry = (codes, m.group(2).strip() or "no reason given")
        out[lineno] = entry
        if line.lstrip().startswith("#"):
            out.setdefault(lineno + 1, entry)
    return out


def _kernel_header_lines(finding: StaticFinding, headers: dict) -> list[int]:
    """Candidate pragma lines for a finding: its own line plus the
    header line of the kernel it is attributed to (if any)."""
    lines = [finding.line]
    if finding.kernel and finding.kernel in headers:
        lines.append(headers[finding.kernel])
    return lines


def apply_suppressions(findings: list[StaticFinding], sources: dict,
                       kernel_lines: dict | None = None
                       ) -> list[StaticFinding]:
    """Mark findings whose line (or kernel header line) carries a
    matching pragma; returns new findings with ``suppressed`` set."""
    pragmas = {path: parse_pragmas(src) for path, src in sources.items()}
    kernel_lines = kernel_lines or {}
    out: list[StaticFinding] = []
    for f in findings:
        per_file = pragmas.get(f.path, {})
        reason = None
        for line in _kernel_header_lines(f, kernel_lines):
            hit = per_file.get(line)
            if hit and f.code in hit[0]:
                reason = hit[1]
                break
        if reason is not None:
            f = StaticFinding(f.path, f.line, f.code, f.message,
                              kernel=f.kernel, array=f.array,
                              suppressed=reason)
        out.append(f)
    return out


def load_baseline(path: str | Path) -> set[tuple[str, str, str]]:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("format") != BASELINE_FORMAT:
        raise ValueError(f"unrecognized baseline format in {path}: "
                         f"{data.get('format')!r}")
    return {(e["path"], e["code"], e.get("context", ""))
            for e in data.get("entries", [])}


def apply_baseline(findings: list[StaticFinding],
                   baseline: set[tuple[str, str, str]]
                   ) -> list[StaticFinding]:
    """Mark unsuppressed findings whose fingerprint is baselined."""
    out = []
    for f in findings:
        if f.suppressed is None and f.fingerprint in baseline:
            f = StaticFinding(f.path, f.line, f.code, f.message,
                              kernel=f.kernel, array=f.array,
                              suppressed="baselined")
        out.append(f)
    return out


def write_baseline(findings: list[StaticFinding], path: str | Path) -> int:
    """Write the fingerprints of the given (active) findings; returns
    the entry count.  Deterministic ordering so the file diffs cleanly."""
    entries = sorted({f.fingerprint for f in findings if f.suppressed is None})
    payload = {
        "format": BASELINE_FORMAT,
        "entries": [{"path": p, "code": c, "context": k}
                    for p, c, k in entries],
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True)
                          + "\n", encoding="utf-8")
    return len(entries)
