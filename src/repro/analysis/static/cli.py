"""Command-line entry point: ``python -m repro.analysis.static``.

Typical invocations::

    # whole-program verify (CI gate): exit 1 on any unsuppressed finding
    python -m repro.analysis.static src/repro --manifests docs/manifests \\
        --baseline .sta-baseline.json

    # machine-readable reports
    python -m repro.analysis.static src/repro --format sarif -o sta.sarif
    python -m repro.analysis.static src/repro --format json --summaries

    # regenerate the reviewed effect manifests after a kernel change
    python -m repro.analysis.static src/repro --write-manifests docs/manifests

Exit codes: ``0`` clean, ``1`` unsuppressed findings, ``2`` usage error
or unparseable source file (the offending path is printed to stderr —
distinct from rule findings so CI can tell the two apart).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .extract import analyze_paths
from .manifest import load_manifests, write_manifests
from .report import render_json, render_sarif, render_text
from .rules import RULES, rule_codes, run_rules
from .suppress import (apply_baseline, apply_suppressions, load_baseline,
                       write_baseline)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.static",
        description="Whole-program kernel effect analyzer: static "
                    "race/barrier/lifetime/determinism verification with "
                    "effect manifests.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze "
                             "(e.g. src/repro)")
    parser.add_argument("--rules", metavar="CODES",
                        help="comma-separated rule subset "
                             "(default: all registered rules)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--manifests", metavar="DIR",
                        help="check effect summaries against the manifests "
                             "in DIR (enables STA205)")
    parser.add_argument("--write-manifests", metavar="DIR",
                        help="regenerate the per-package effect manifests "
                             "into DIR and exit")
    parser.add_argument("--baseline", metavar="FILE",
                        help="suppress findings fingerprinted in this "
                             "baseline file")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the current unsuppressed findings as a "
                             "new baseline and exit")
    parser.add_argument("--no-suppress", action="store_true",
                        help="ignore inline '# sta: ignore[...]' pragmas")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text output")
    parser.add_argument("--summaries", action="store_true",
                        help="include per-kernel effect summaries in JSON "
                             "output")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for code in rule_codes():
            rule = RULES[code]
            print(f"{code}  {rule.name}: {rule.summary}")
        return 0

    if not args.paths:
        print("error: at least one path is required", file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        # A typo'd path in CI must not silently pass as "0 files, clean".
        for p in missing:
            print(f"{__package__}: error: no such path: {p}",
                  file=sys.stderr)
        return 2

    codes = None
    if args.rules:
        codes = {c.strip().upper() for c in args.rules.split(",") if c.strip()}
        unknown = codes - set(rule_codes())
        if unknown:
            print(f"error: unknown rule(s): {', '.join(sorted(unknown))}; "
                  f"known: {', '.join(rule_codes())}", file=sys.stderr)
            return 2

    program = analyze_paths(args.paths)
    # Unparseable files are a distinct failure mode (exit 2, path on
    # stderr) so CI never mistakes a broken file for a clean run.
    for path, line, msg in program.syntax_errors:
        print(f"{path}:{line}: KRN000 cannot parse file: {msg}",
              file=sys.stderr)

    if args.write_manifests:
        if program.syntax_errors:
            return 2
        written = write_manifests(program, args.write_manifests)
        for path in written:
            print(f"wrote {path}")
        return 0

    manifests = None
    if args.manifests:
        try:
            manifests = load_manifests(args.manifests)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load manifests: {exc}", file=sys.stderr)
            return 2

    findings = run_rules(program, codes=codes, manifests=manifests)
    if not args.no_suppress:
        sources = {mod.path: mod.source for mod in program.modules}
        kernel_lines = {k.key: k.line for k in program.kernels}
        findings = apply_suppressions(findings, sources, kernel_lines)
    if args.baseline:
        try:
            findings = apply_baseline(findings, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    if args.write_baseline:
        n = write_baseline(findings, args.write_baseline)
        print(f"wrote {args.write_baseline} ({n} entr{'y' if n == 1 else 'ies'})")
        return 0

    kernels = program.kernels
    if args.format == "text":
        report = render_text(findings, files_checked=len(program.modules),
                             kernels=len(kernels),
                             show_suppressed=args.show_suppressed)
    elif args.format == "json":
        report = render_json(findings, files_checked=len(program.modules),
                             kernels=kernels, summaries=args.summaries)
    else:
        report = render_sarif(findings)

    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        active = sum(1 for f in findings if f.suppressed is None)
        print(f"wrote {args.output} ({len(findings)} finding(s), "
              f"{active} unsuppressed)")
    else:
        print(report)

    if program.syntax_errors:
        return 2
    return 1 if any(f.suppressed is None for f in findings) else 0


if __name__ == "__main__":
    raise SystemExit(main())
