"""Effect-manifest I/O (the reviewed artifact under ``docs/manifests/``).

One JSON file per core package maps kernel keys
(``path::function::kernel``) to their effect summaries.  Regenerating
is always mechanical (``--write-manifests``); the point is that the
*diff* of a manifest shows up in code review whenever a kernel's memory
behavior changes, which is the declarative kernel-spec front end the
multi-backend roadmap item needs.
"""

from __future__ import annotations

import json
from pathlib import Path

from .extract import Program
from .model import MANIFEST_FORMAT
from .rules import kernel_package

__all__ = ["MANIFEST_PACKAGES", "load_manifests", "write_manifests",
           "build_manifests"]

#: packages whose kernels carry checked-in golden manifests
MANIFEST_PACKAGES = ("core", "dmr", "meshing", "mst", "pta", "satsp", "vgpu")


def build_manifests(program: Program,
                    packages=MANIFEST_PACKAGES) -> dict[str, dict]:
    """package -> manifest dict for every requested package."""
    out = {pkg: {"format": MANIFEST_FORMAT, "package": pkg, "kernels": {}}
           for pkg in packages}
    for k in program.kernels:
        pkg = kernel_package(k.path)
        if pkg in out:
            out[pkg]["kernels"][k.key] = k.manifest_entry()
    for manifest in out.values():
        manifest["kernels"] = dict(sorted(manifest["kernels"].items()))
    return out


def write_manifests(program: Program, directory: str | Path,
                    packages=MANIFEST_PACKAGES) -> list[Path]:
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for pkg, manifest in build_manifests(program, packages).items():
        path = directory / f"{pkg}.json"
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        written.append(path)
    return written


def load_manifests(directory: str | Path) -> dict[str, dict]:
    """Load every ``*.json`` manifest in ``directory`` (package-keyed)."""
    directory = Path(directory)
    out: dict[str, dict] = {}
    for path in sorted(directory.glob("*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("format") != MANIFEST_FORMAT:
            raise ValueError(f"unrecognized manifest format in {path}: "
                             f"{data.get('format')!r}")
        out[data.get("package", path.stem)] = data
    return out
