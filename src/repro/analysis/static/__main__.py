"""Module entry point: ``python -m repro.analysis.static``."""

from .cli import main

raise SystemExit(main())
