"""Rule registry and whole-program checks over kernel effect summaries.

Static rules (run by ``python -m repro.analysis.static``):

``STA201`` **write-write race** — unsynchronized concurrent stores that
    can leave an array in a state no serial order explains: either two
    plain stores to one array inside a single barrier interval, or the
    Section 7.3 two-phase shape — a concurrent plain store to an array
    that is also *read* in the same interval, with no later read-only
    interval adjudicating the outcome.  The paper's three-phase marking
    passes (its final ``check`` phase is exactly that read-only
    interval); the two-phase variant is flagged.

``STA202`` **barrier divergence** — in an SPMD generator kernel, a
    ``yield`` (device-wide barrier) reachable on only some control
    paths: under an unbalanced ``if``, inside a ``while``, or inside a
    ``for`` whose trip count depends on the thread id.  The classic
    ``__syncthreads`` divergence bug, caught without running a thread.

``STA203`` **allocator lifetime** — straight-line use-after-free or
    double-free of a device allocation / recycle-pool handle
    (``free``/``release``/``realloc`` vocabulary of
    :mod:`repro.vgpu.memory`).  Branches are analyzed independently and
    never merged, so only must-happen bugs are reported.

``STA204`` **determinism** — unseeded RNG (``default_rng()`` with no
    seed, legacy global ``np.random.*``, stdlib ``random.*``) or
    iteration over an unordered set inside a kernel body: both make a
    kernel's output irreproducible across runs, which breaks the
    repository's byte-identical-digest contract.

``STA205`` **effect-manifest drift** — a kernel's computed effect
    summary disagrees with the reviewed manifest checked in under
    ``docs/manifests/`` (or a kernel/manifest entry is missing).
    Kernel effects are a reviewed artifact: changing what a kernel
    touches requires regenerating the manifest in the same commit
    (``--write-manifests``).

The four ``KRN101``–``KRN104`` AST lint rules from the original
:mod:`repro.analysis.lint` pass live in the same registry and report
through the same finding type, CLI, suppressions and baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable

from .extract import Program, dotted_name
from .model import READ, STORE, StaticFinding

__all__ = ["Rule", "RULES", "rule_codes", "run_rules"]

_RELEASE_ATTRS = {"free", "release"}


@dataclass(frozen=True)
class Rule:
    code: str
    name: str
    summary: str
    check: Callable[["RuleContext"], list[StaticFinding]]


@dataclass
class RuleContext:
    program: Program
    #: package name -> parsed manifest dict (None disables STA205)
    manifests: dict | None = None


RULES: dict[str, Rule] = {}


def _rule(code: str, name: str, summary: str):
    def deco(fn):
        RULES[code] = Rule(code, name, summary, fn)
        return fn
    return deco


def rule_codes() -> list[str]:
    return sorted(RULES)


def run_rules(program: Program, *, codes=None,
              manifests: dict | None = None) -> list[StaticFinding]:
    """Run the selected rules; findings sorted and de-duplicated."""
    ctx = RuleContext(program, manifests)
    findings: list[StaticFinding] = []
    for code in rule_codes():
        if codes is not None and code not in codes:
            continue
        findings.extend(RULES[code].check(ctx))
    seen: set[tuple] = set()
    out: list[StaticFinding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.code)):
        key = (f.path, f.line, f.code, f.array)
        if key not in seen:
            seen.add(key)
            out.append(f)
    return out


# --------------------------------------------------------------------- #
# STA201 — static write-write race                                      #
# --------------------------------------------------------------------- #

@_rule("STA201", "write-write-race",
       "unsynchronized concurrent stores to one array in a single "
       "barrier interval (the §7.3 two-phase marking bug)")
def _sta201(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for k in ctx.program.kernels:
        # (a) two concurrent (multi-thread) plain stores to one array
        # inside one interval.  Host-serialized subscript stores do not
        # pair with a device scatter: in the vectorized idiom host code
        # runs strictly before/after the launch, not during it.
        for iv in k.intervals:
            by_array: dict[str, list] = {}
            for a in iv.accesses:
                if a.kind == STORE and a.concurrent:
                    by_array.setdefault(a.array, []).append(a)
            for array, conc in by_array.items():
                lines = {a.line for a in conc}
                if len(lines) > 1:
                    out.append(StaticFinding(
                        k.path, max(a.line for a in conc), "STA201",
                        f"two unsynchronized plain stores to '{array}' in "
                        f"one barrier interval of kernel '{k.kernel}'; the "
                        "surviving value depends on thread interleaving — "
                        "use atomics or separate the stores with a barrier",
                        kernel=k.key, array=array))
        # (b) the two-phase marking shape: the *last* interval that
        # concurrently stores to an array also reads it, and no later
        # read-only interval adjudicates the outcome.
        for array in k.arrays(STORE, concurrent=True):
            store_ivs = [i for i, iv in enumerate(k.intervals)
                         if any(a.concurrent for a in
                                iv.accesses_of(STORE, array))]
            last = max(store_ivs)
            if array not in k.intervals[last].arrays(READ):
                continue
            adjudicated = any(
                array in k.intervals[j].arrays(READ)
                and not any(a.concurrent for a in
                            k.intervals[j].accesses_of(STORE, array))
                for j in range(last + 1, len(k.intervals)))
            if not adjudicated:
                line = max(a.line for a in
                           k.intervals[last].accesses_of(STORE, array)
                           if a.concurrent)
                out.append(StaticFinding(
                    k.path, line, "STA201",
                    f"kernel '{k.kernel}' reads and concurrently stores "
                    f"'{array}' in the same barrier interval with no later "
                    "read-only check phase; exclusive-ownership decisions "
                    "taken from that stale read can overlap (§7.3 "
                    "two-phase marking race — add a check phase after a "
                    "barrier, as in three_phase_mark)",
                    kernel=k.key, array=array))
    return out


# --------------------------------------------------------------------- #
# STA202 — barrier divergence                                           #
# --------------------------------------------------------------------- #

def _yields_in(stmts) -> int:
    n = 0
    for s in stmts:
        if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                          ast.ClassDef)):
            continue
        for node in ast.walk(s):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                n += 1
    return n


def _names_in(node: ast.AST) -> set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


@_rule("STA202", "barrier-divergence",
       "a device-wide barrier (SPMD yield) reachable on only some "
       "control paths — threads would deadlock at __syncthreads")
def _sta202(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for k in ctx.program.kernels:
        if k.kind != "spmd" or not k.generator or k.node is None:
            continue
        fn = k.node
        tid = fn.args.args[0].arg if fn.args.args else ""

        def walk(stmts) -> None:
            for s in stmts:
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                    continue
                if isinstance(s, ast.If):
                    nb, no = _yields_in(s.body), _yields_in(s.orelse)
                    if nb != no:
                        side = s.body if nb > no else s.orelse
                        out.append(StaticFinding(
                            k.path, _yield_line(side) or s.lineno, "STA202",
                            f"kernel '{k.kernel}': barrier (yield) inside "
                            "an unbalanced conditional — threads taking "
                            "the other branch never reach it; hoist the "
                            "barrier out of the branch",
                            kernel=k.key))
                elif isinstance(s, ast.While):
                    if _yields_in(s.body):
                        out.append(StaticFinding(
                            k.path, _yield_line(s.body) or s.lineno,
                            "STA202",
                            f"kernel '{k.kernel}': barrier (yield) inside "
                            "a while loop whose trip count may differ per "
                            "thread", kernel=k.key))
                elif isinstance(s, ast.For):
                    if _yields_in(s.body) and tid and tid in _names_in(s.iter):
                        out.append(StaticFinding(
                            k.path, _yield_line(s.body) or s.lineno,
                            "STA202",
                            f"kernel '{k.kernel}': barrier (yield) inside "
                            "a loop whose trip count depends on the thread "
                            f"id '{tid}'", kernel=k.key))
                for blk in ("body", "orelse", "finalbody"):
                    walk(getattr(s, blk, []) or [])
                for handler in getattr(s, "handlers", []) or []:
                    walk(handler.body)

        walk(fn.body)
    return out


def _yield_line(stmts) -> int | None:
    for s in stmts:
        for node in ast.walk(s):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return node.lineno
    return None


# --------------------------------------------------------------------- #
# STA203 — allocator lifetime                                           #
# --------------------------------------------------------------------- #

@_rule("STA203", "allocator-lifetime",
       "straight-line use-after-free / double-free of a device "
       "allocation or recycle-pool handle")
def _sta203(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for mod in ctx.program.modules:
        for info in mod.all_functions:
            _lifetime_block(info.node.body, {}, mod.path, out)
    return out


def _header_exprs(stmt: ast.stmt) -> list[ast.AST]:
    """The expressions evaluated by ``stmt`` itself, *excluding* nested
    statement blocks (those are walked separately with their own copy
    of the lifetime state)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _free_calls(stmt: ast.stmt) -> list[tuple[str, int, str]]:
    """(handle, line, verb) for free/release/realloc calls in the
    statement's own expressions."""
    frees = []
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _RELEASE_ATTRS | {"realloc"} \
                    and node.args:
                name = dotted_name(node.args[0])
                if name:
                    frees.append((name, node.lineno, node.func.attr))
    return frees


def _loads_in(stmt: ast.stmt) -> dict[str, int]:
    loads: dict[str, int] = {}
    for expr in _header_exprs(stmt):
        for node in ast.walk(expr):
            if isinstance(node, (ast.Name, ast.Attribute)) and \
                    isinstance(getattr(node, "ctx", None), ast.Load):
                name = dotted_name(node)
                if name:
                    loads.setdefault(name, node.lineno)
    return loads


def _assigned_names(stmt: ast.stmt) -> set[str]:
    names: set[str] = set()
    targets: list[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.For):
        targets = [stmt.target]
    for t in targets:
        elts = t.elts if isinstance(t, (ast.Tuple, ast.List)) else [t]
        for e in elts:
            if isinstance(e, (ast.Name, ast.Attribute)):
                name = dotted_name(e)
                if name:
                    names.add(name)
    return names


def _lifetime_block(stmts, state: dict, path: str,
                    out: list[StaticFinding]) -> None:
    """Walk one straight-line block; ``state`` maps freed handle names to
    (line, verb).  Branch bodies get an independent copy of the state
    (no merge), so reported bugs hold on every execution of the block."""
    for stmt in stmts:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        frees = _free_calls(stmt)
        freed_here = {name for name, _, _ in frees}
        for name, line in _loads_in(stmt).items():
            if name in state and name not in freed_here:
                fline, verb = state[name]
                out.append(StaticFinding(
                    path, line, "STA203",
                    f"use of handle '{name}' after it was "
                    f"{verb}d at line {fline} (use-after-free)",
                    array=name))
                del state[name]  # report once per handle
        for name, line, verb in frees:
            if name in state:
                fline, _ = state[name]
                out.append(StaticFinding(
                    path, line, "STA203",
                    f"handle '{name}' released twice ({verb} at line "
                    f"{line}, already freed at line {fline}) — double-free",
                    array=name))
            else:
                state[name] = (line, verb)
        for name in _assigned_names(stmt):
            state.pop(name, None)
        if isinstance(stmt, ast.With):
            _lifetime_block(stmt.body, state, path, out)
        else:
            for blk in ("body", "orelse", "finalbody"):
                for sub in [getattr(stmt, blk, []) or []]:
                    if sub:
                        _lifetime_block(sub, dict(state), path, out)
            for handler in getattr(stmt, "handlers", []) or []:
                _lifetime_block(handler.body, dict(state), path, out)


# --------------------------------------------------------------------- #
# STA204 — determinism                                                  #
# --------------------------------------------------------------------- #

@_rule("STA204", "determinism",
       "unseeded RNG or ordering-sensitive iteration inside a kernel "
       "body — output becomes irreproducible across runs")
def _sta204(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for k in ctx.program.kernels:
        for ev in k.rng_events:
            via = f" (via helper {ev.via})" if ev.via else ""
            out.append(StaticFinding(
                k.path, ev.line, "STA204",
                f"kernel '{k.kernel}': {ev.what}{via}", kernel=k.key))
    return out


# --------------------------------------------------------------------- #
# STA205 — effect-manifest drift                                        #
# --------------------------------------------------------------------- #

def kernel_package(path: str) -> str | None:
    """Package component under ``repro`` (``src/repro/dmr/... -> dmr``)."""
    parts = path.replace("\\", "/").split("/")
    if "repro" in parts:
        idx = parts.index("repro")
        if idx + 2 < len(parts):
            return parts[idx + 1]
    return None


@_rule("STA205", "effect-manifest-drift",
       "a kernel's computed effect summary disagrees with the reviewed "
       "manifest under docs/manifests/")
def _sta205(ctx: RuleContext) -> list[StaticFinding]:
    if ctx.manifests is None:
        return []
    out: list[StaticFinding] = []
    seen_keys: dict[str, set[str]] = {pkg: set() for pkg in ctx.manifests}
    for k in ctx.program.kernels:
        pkg = kernel_package(k.path)
        if pkg not in ctx.manifests:
            continue
        entries = ctx.manifests[pkg].get("kernels", {})
        seen_keys[pkg].add(k.key)
        entry = entries.get(k.key)
        computed = k.manifest_entry()
        if entry is None:
            out.append(StaticFinding(
                k.path, k.line, "STA205",
                f"kernel '{k.kernel}' has no entry in the '{pkg}' effect "
                "manifest — kernel effects are a reviewed artifact; run "
                "`python -m repro.analysis.static src/repro "
                "--write-manifests docs/manifests` and commit the result",
                kernel=k.key))
        elif entry != computed:
            drift = _describe_drift(entry, computed)
            out.append(StaticFinding(
                k.path, k.line, "STA205",
                f"kernel '{k.kernel}' effects drifted from the '{pkg}' "
                f"manifest ({drift}) — review the change and regenerate "
                "with --write-manifests", kernel=k.key))
    for pkg, manifest in ctx.manifests.items():
        for key in sorted(set(manifest.get("kernels", {})) - seen_keys[pkg]):
            path = key.split("::", 1)[0]
            out.append(StaticFinding(
                path, 0, "STA205",
                f"stale manifest entry '{key}' in the '{pkg}' manifest: no "
                "such kernel in the analyzed sources — regenerate with "
                "--write-manifests", kernel=key))
    return out


def _describe_drift(expected: dict, computed: dict) -> str:
    parts = []
    for field in sorted(set(expected) | set(computed)):
        a, b = expected.get(field), computed.get(field)
        if a != b:
            parts.append(f"{field}: manifest {a!r} != code {b!r}")
    return "; ".join(parts) or "unknown drift"


# --------------------------------------------------------------------- #
# KRN101–104 — the folded AST lint rules                                #
# --------------------------------------------------------------------- #

def _is_launch_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "launch")


def _is_constant_subscript(sub: ast.Subscript) -> bool:
    sl = sub.slice
    if isinstance(sl, (ast.Constant, ast.Slice)):
        return True
    if isinstance(sl, ast.UnaryOp) and isinstance(sl.operand, ast.Constant):
        return True
    if isinstance(sl, ast.Tuple):
        return all(isinstance(e, (ast.Constant, ast.Slice)) for e in sl.elts)
    return False


def _launch_blocks(tree: ast.AST):
    for node in ast.walk(tree):
        if isinstance(node, ast.With):
            items = [i for i in node.items
                     if _is_launch_call(i.context_expr)]
            if items:
                yield node, items


@_rule("KRN101", "raw-store-in-kernel",
       "plain fancy store inside a kernel launch block; use "
       "scatter_write or an atomic_* primitive")
def _krn101(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for mod in ctx.program.modules:
        for block, _items in _launch_blocks(mod.tree):
            for stmt in block.body:
                for node in ast.walk(stmt):
                    targets = []
                    if isinstance(node, ast.Assign):
                        targets = node.targets
                    elif isinstance(node, ast.AugAssign):
                        targets = [node.target]
                    for t in targets:
                        if isinstance(t, ast.Subscript) and \
                                not _is_constant_subscript(t):
                            out.append(StaticFinding(
                                mod.path, t.lineno, "KRN101",
                                "plain fancy store inside a kernel launch "
                                "block; use vgpu.atomics.scatter_write or "
                                "an atomic_* primitive so race semantics "
                                "are modeled"))
    return out


@_rule("KRN102", "host-loop-over-threads",
       "host-side Python loop over range() inside a vectorized kernel "
       "block")
def _krn102(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for mod in ctx.program.modules:
        for block, _items in _launch_blocks(mod.tree):
            for stmt in block.body:
                for node in ast.walk(stmt):
                    if isinstance(node, ast.For) and \
                            isinstance(node.iter, ast.Call) and \
                            isinstance(node.iter.func, ast.Name) and \
                            node.iter.func.id == "range":
                        out.append(StaticFinding(
                            mod.path, node.lineno, "KRN102",
                            "host-side Python loop over range() inside a "
                            "vectorized kernel block; vectorize it or move "
                            "it to an SPMD generator kernel"))
    return out


@_rule("KRN103", "missing-op-accounting",
       "kernel launch block never records its operation counts")
def _krn103(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for mod in ctx.program.modules:
        for block, items in _launch_blocks(mod.tree):
            rec_names = {i.optional_vars.id for i in items
                         if isinstance(i.optional_vars, ast.Name)}
            if not rec_names:
                continue
            called = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in rec_names
                for stmt in block.body for node in ast.walk(stmt))
            if not called:
                out.append(StaticFinding(
                    mod.path, block.lineno, "KRN103",
                    "kernel launch block never records its operation "
                    "counts (rec(...) not called); the cost model will "
                    "price it as an empty dispatch"))
    return out


@_rule("KRN104", "bare-except",
       "bare except hides engine/geometry errors")
def _krn104(ctx: RuleContext) -> list[StaticFinding]:
    out: list[StaticFinding] = []
    for mod in ctx.program.modules:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                out.append(StaticFinding(
                    mod.path, node.lineno, "KRN104",
                    "bare except hides engine/geometry errors; catch "
                    "specific exceptions"))
    return out
