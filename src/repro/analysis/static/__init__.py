"""``repro.analysis.static`` — whole-program kernel effect analyzer.

The static counterpart of the :mod:`repro.analysis` *dynamic* race
detector: instead of executing a failing input, it extracts a
per-kernel **effect summary** (arrays read / written / atomically
updated, allocator handles acquired / released, keyed by barrier
interval) from the AST of every kernel site — launch-record regions,
``with launcher.launch(...)`` blocks, and SPMD thread functions — with
interprocedural propagation through the helper functions kernels call,
then verifies whole-program rules over the summaries:

=========  ==========================================================
STA201     static write-write race (the §7.3 two-phase marking bug)
STA202     barrier divergence in SPMD kernels
STA203     allocator handle use-after-free / double-free
STA204     unseeded RNG / ordering-sensitive iteration (determinism)
STA205     effect-summary drift against ``docs/manifests/``
KRN101-104 the folded AST lint rules (one registry, one finding type)
=========  ==========================================================

Run it as ``python -m repro.analysis.static src/repro`` (see
``docs/STATIC_ANALYSIS.md`` for the rule catalog, suppression and
baseline workflow, and the manifest format).
"""

from .extract import ModuleModel, Program, analyze_paths
from .manifest import (MANIFEST_PACKAGES, build_manifests, load_manifests,
                       write_manifests)
from .model import (Access, Interval, KernelSummary, RngEvent,
                    StaticFinding)
from .report import render_json, render_sarif, render_text
from .rules import RULES, Rule, rule_codes, run_rules
from .suppress import (apply_baseline, apply_suppressions, load_baseline,
                       parse_pragmas, write_baseline)

__all__ = [
    "Access", "Interval", "KernelSummary", "RngEvent", "StaticFinding",
    "ModuleModel", "Program", "analyze_paths",
    "Rule", "RULES", "rule_codes", "run_rules",
    "MANIFEST_PACKAGES", "build_manifests", "load_manifests",
    "write_manifests",
    "apply_baseline", "apply_suppressions", "load_baseline",
    "parse_pragmas", "write_baseline",
    "render_json", "render_sarif", "render_text",
]
