"""Data model for the whole-program kernel effect analyzer.

The analyzer's currency is the **effect summary**: for every kernel
site it records which arrays the kernel reads, stores to, updates
atomically, and which allocator handles it acquires/releases — keyed
by *barrier interval* (the stretch of kernel code between two
device-wide barriers).  Summaries are what the rules (STA201–205)
check, and their JSON encoding is the checked-in manifest format under
``docs/manifests/`` (rule STA205 fails when code and manifest drift).

Array identity is the *dotted source name* of the subscripted value
(``marks``, ``claims.values``, ``self.points``) — a static
approximation of the device allocation, which is exactly the precision
the vectorized-NumPy kernel idiom supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Access", "Interval", "RngEvent", "KernelSummary", "StaticFinding",
    "MANIFEST_FORMAT", "READ", "STORE", "ATOMIC", "ACQUIRE", "RELEASE",
]

#: manifest schema identifier written to every ``docs/manifests/*.json``
MANIFEST_FORMAT = "repro.effects/1"

READ = "read"          #: subscripted load of an array
STORE = "store"        #: plain (non-atomic) store; racy when concurrent
ATOMIC = "atomic"      #: atomic_* / fetch_add / CAS read-modify-write
ACQUIRE = "acquire"    #: allocator handle obtained (malloc/allocate/acquire)
RELEASE = "release"    #: allocator handle returned (free/release)


@dataclass(frozen=True)
class Access:
    """One array effect observed inside a kernel body.

    ``concurrent`` is True for the device primitives that model many
    threads touching memory in one batch (``scatter_write``, the
    ``atomic_*`` family); a host-serialized subscript store is not
    concurrent.  ``intent`` carries ``scatter_write(..., intent=)``
    (``"mark"`` tags §7.3 marking-protocol traffic).  ``via`` names the
    helper-function chain the effect was propagated through, empty for
    direct effects.
    """

    kind: str
    array: str
    line: int
    concurrent: bool = False
    intent: str = ""
    via: str = ""


@dataclass(frozen=True)
class RngEvent:
    """A determinism hazard observed inside a kernel body (STA204)."""

    line: int
    what: str
    via: str = ""


@dataclass
class Interval:
    """Effects of one barrier interval (between two device barriers)."""

    index: int
    accesses: list[Access] = field(default_factory=list)

    def arrays(self, *kinds: str, concurrent: bool | None = None) -> set[str]:
        return {a.array for a in self.accesses
                if a.kind in kinds
                and (concurrent is None or a.concurrent == concurrent)}

    def accesses_of(self, kind: str, array: str | None = None) -> list[Access]:
        return [a for a in self.accesses if a.kind == kind
                and (array is None or a.array == array)]


@dataclass
class KernelSummary:
    """Per-kernel effect summary.

    ``kind`` distinguishes the three launch idioms the extractor
    understands: ``"region"`` (statements attributed to a one-shot
    ``counter.launch("name", ...)`` record), ``"launch-block"``
    (``with launcher.launch("name") as rec:``), and ``"spmd"`` (a
    thread function handed to :func:`repro.vgpu.kernel.spmd_launch`,
    where every ``yield`` is a device-wide barrier).
    """

    path: str
    qualname: str
    kernel: str
    line: int
    kind: str
    generator: bool = False
    intervals: list[Interval] = field(default_factory=list)
    declared_barriers: int | None = None
    helpers: tuple[str, ...] = ()
    rng_events: list[RngEvent] = field(default_factory=list)
    #: AST node of the SPMD thread function (STA202); not serialized.
    node: object | None = None

    @property
    def key(self) -> str:
        return f"{self.path}::{self.qualname}::{self.kernel}"

    def arrays(self, *kinds: str, concurrent: bool | None = None) -> set[str]:
        out: set[str] = set()
        for iv in self.intervals:
            out |= iv.arrays(*kinds, concurrent=concurrent)
        return out

    def manifest_entry(self) -> dict:
        """The reviewed-artifact encoding checked in under
        ``docs/manifests/`` — line numbers are deliberately excluded so
        moving code without changing its effects is not drift."""
        return {
            "function": self.qualname,
            "kind": self.kind,
            "intervals": len(self.intervals),
            "declared_barriers": self.declared_barriers,
            "reads": sorted(self.arrays(READ)),
            "writes": sorted(self.arrays(STORE)),
            "atomics": sorted(self.arrays(ATOMIC)),
            "acquires": sorted(self.arrays(ACQUIRE)),
            "releases": sorted(self.arrays(RELEASE)),
            "helpers": sorted(set(self.helpers)),
        }


@dataclass(frozen=True)
class StaticFinding:
    """One analyzer finding — shared by the STA and folded KRN rules.

    ``kernel`` attributes the finding to a kernel summary key (empty
    for module-level findings such as KRN104).  ``suppressed`` carries
    the inline-pragma reason once suppression matching has run.
    """

    path: str
    line: int
    code: str
    message: str
    kernel: str = ""
    array: str = ""
    suppressed: str | None = None

    def __str__(self) -> str:
        where = f" [{self.kernel}]" if self.kernel else ""
        sup = f" (suppressed: {self.suppressed})" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.code}{where} {self.message}{sup}"

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-insensitive identity used by the baseline file."""
        return (self.path, self.code, self.kernel or self.array)
