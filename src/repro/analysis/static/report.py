"""Text / JSON / SARIF rendering of analyzer results.

The SARIF output is a minimal SARIF 2.1.0 document (tool + rules +
results with physical locations) so CI can upload it as an artifact and
code-scanning UIs can ingest it; suppressed findings are carried with a
SARIF ``suppressions`` entry rather than dropped, preserving the audit
trail.
"""

from __future__ import annotations

import json

from .model import StaticFinding
from .rules import RULES

__all__ = ["render_text", "render_json", "render_sarif"]

TOOL_NAME = "repro.analysis.static"
TOOL_VERSION = "1.0"


def render_text(findings: list[StaticFinding], *, files_checked: int,
                kernels: int, show_suppressed: bool = False) -> str:
    lines = []
    active = [f for f in findings if f.suppressed is None]
    shown = findings if show_suppressed else active
    for f in shown:
        lines.append(str(f))
    n_sup = len(findings) - len(active)
    status = "clean" if not active else f"{len(active)} finding(s)"
    if n_sup:
        status += f", {n_sup} suppressed"
    lines.append(f"{TOOL_NAME}: {files_checked} file(s), {kernels} kernel "
                 f"summarie(s), {status}")
    return "\n".join(lines)


def render_json(findings: list[StaticFinding], *, files_checked: int,
                kernels, summaries: bool = False) -> str:
    doc = {
        "tool": TOOL_NAME,
        "version": TOOL_VERSION,
        "files_checked": files_checked,
        "kernels": len(kernels),
        "findings": [
            {"path": f.path, "line": f.line, "code": f.code,
             "message": f.message, "kernel": f.kernel, "array": f.array,
             "suppressed": f.suppressed}
            for f in findings
        ],
    }
    if summaries:
        doc["summaries"] = {k.key: k.manifest_entry() for k in kernels}
    return json.dumps(doc, indent=2, sort_keys=True)


def _level(finding: StaticFinding) -> str:
    return "warning" if finding.code == "STA204" else "error"


def render_sarif(findings: list[StaticFinding]) -> str:
    results = []
    for f in findings:
        result = {
            "ruleId": f.code,
            "level": _level(f),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": max(1, f.line)},
                },
            }],
        }
        if f.kernel:
            result["properties"] = {"kernel": f.kernel}
        if f.suppressed is not None:
            result["suppressions"] = [{
                "kind": "inSource",
                "justification": f.suppressed,
            }]
        results.append(result)
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "informationUri":
                    "https://github.com/anon/repro/blob/main/docs/"
                    "STATIC_ANALYSIS.md",
                "rules": [
                    {"id": rule.code,
                     "name": rule.name,
                     "shortDescription": {"text": rule.summary}}
                    for rule in (RULES[c] for c in sorted(RULES))
                ],
            }},
            "results": results,
        }],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
