"""Static lint pass for simulated-GPU kernel code (``repro.analysis.lint``).

AST-based checks for the patterns that the dynamic race detector can
only catch at runtime — run them in CI so every kernel is checked by
construction::

    python -m repro.analysis.lint src/repro

Rules
-----

``KRN101`` **raw-store-in-kernel** — a plain fancy assignment
    ``dest[idx] = val`` (or ``dest[idx] += val``) with a non-constant
    subscript inside a ``KernelLauncher.launch`` block.  Concurrent
    stores must go through :func:`repro.vgpu.atomics.scatter_write` or
    the ``atomic_*`` primitives so race semantics are modeled and the
    sanitizer sees them; NumPy fancy assignment silently keeps the last
    duplicate, which is neither.

``KRN102`` **host-loop-over-threads** — a host-side Python ``for``
    loop over ``range(...)`` inside a vectorized kernel block.  The
    vectorized path models thousands of concurrent threads with array
    ops; per-thread Python loops belong in SPMD generator kernels
    (:func:`repro.vgpu.kernel.spmd_launch`), not in ``launch`` blocks.

``KRN103`` **missing-op-accounting** — a ``with ... .launch(...) as
    rec:`` block that never calls ``rec(...)``.  Unaccounted kernels
    are priced as empty dispatches by the cost model, silently skewing
    every figure derived from the counter.

``KRN104`` **bare-except** — ``except:`` swallows ``KeyboardInterrupt``
    and hides geometry/conflict errors the engine relies on observing.

Constant subscripts (``dest[0]``), slice stores (``dest[:n]``) and
tuple-index stores are exempt from ``KRN101``: a single thread updating
one known cell, or a bulk phase-local initialization, is not a
concurrent scatter.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["LintFinding", "lint_source", "lint_paths", "main"]


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def _is_launch_call(node: ast.AST) -> bool:
    """True for ``<anything>.launch(...)`` call expressions."""
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "launch")


def _is_constant_subscript(sub: ast.Subscript) -> bool:
    """Subscripts that cannot be a concurrent scatter."""
    sl = sub.slice
    if isinstance(sl, (ast.Constant, ast.Slice)):
        return True
    if isinstance(sl, ast.UnaryOp) and isinstance(sl.operand, ast.Constant):
        return True
    if isinstance(sl, ast.Tuple):
        return all(isinstance(e, (ast.Constant, ast.Slice)) for e in sl.elts)
    return False


class _KernelBlockVisitor(ast.NodeVisitor):
    """Walks one ``with ...launch(...)`` block body."""

    def __init__(self, linter: "_Linter", rec_names: set[str]) -> None:
        self.linter = linter
        self.rec_names = rec_names
        self.rec_called = False

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in self.rec_names:
            self.rec_called = True
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def _check_store(self, target: ast.AST) -> None:
        if isinstance(target, ast.Subscript) \
                and not _is_constant_subscript(target):
            self.linter.add(target.lineno, "KRN101",
                            "plain fancy store inside a kernel launch block; "
                            "use vgpu.atomics.scatter_write or an atomic_* "
                            "primitive so race semantics are modeled")

    def visit_For(self, node: ast.For) -> None:
        it = node.iter
        if isinstance(it, ast.Call) and isinstance(it.func, ast.Name) \
                and it.func.id == "range":
            self.linter.add(node.lineno, "KRN102",
                            "host-side Python loop over range() inside a "
                            "vectorized kernel block; vectorize it or move "
                            "it to an SPMD generator kernel")
        self.generic_visit(node)

    # Nested launch blocks are handled by the outer linter walk.
    def visit_With(self, node: ast.With) -> None:
        self.generic_visit(node)


class _Linter(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: list[LintFinding] = []

    def add(self, line: int, code: str, message: str) -> None:
        self.findings.append(LintFinding(self.path, line, code, message))

    def visit_With(self, node: ast.With) -> None:
        launch_items = [item for item in node.items
                        if _is_launch_call(item.context_expr)]
        if launch_items:
            rec_names = {item.optional_vars.id for item in launch_items
                         if isinstance(item.optional_vars, ast.Name)}
            visitor = _KernelBlockVisitor(self, rec_names)
            for stmt in node.body:
                visitor.visit(stmt)
            if rec_names and not visitor.rec_called:
                self.add(node.lineno, "KRN103",
                         "kernel launch block never records its operation "
                         "counts (rec(...) not called); the cost model will "
                         "price it as an empty dispatch")
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.add(node.lineno, "KRN104",
                     "bare except hides engine/geometry errors; catch "
                     "specific exceptions")
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; returns the findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, "KRN000",
                            f"syntax error: {exc.msg}")]
    linter = _Linter(path)
    linter.visit(tree)
    return sorted(linter.findings, key=lambda f: (f.line, f.code))


def _iter_py_files(paths: Sequence[str]) -> Iterable[Path]:
    for p in paths:
        path = Path(p)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[str]) -> tuple[list[LintFinding], int]:
    """Lint files/directories; returns ``(findings, files_checked)``."""
    findings: list[LintFinding] = []
    checked = 0
    for file in _iter_py_files(paths):
        checked += 1
        findings.extend(lint_source(file.read_text(encoding="utf-8"),
                                    str(file)))
    return findings, checked


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    missing = [p for p in argv if not Path(p).exists()]
    if missing:
        # A typo'd path in CI must not silently pass as "0 files, clean".
        for p in missing:
            print(f"repro.analysis.lint: error: no such path: {p}",
                  file=sys.stderr)
        return 2
    findings, checked = lint_paths(argv)
    for f in findings:
        print(f)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"repro.analysis.lint: {checked} file(s) checked, {status}")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
