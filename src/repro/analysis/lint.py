"""Deprecated alias for the ``KRN`` rules of ``repro.analysis.static``.

The standalone lint pass was folded into the whole-program kernel
effect analyzer (one rule registry, one finding type, one baseline
format) — see :mod:`repro.analysis.static` and
``docs/STATIC_ANALYSIS.md``.  ``python -m repro.analysis.lint`` keeps
working and runs exactly the ``KRN101``–``KRN104`` subset; new code and
CI should run::

    python -m repro.analysis.static src/repro

Exit codes: ``0`` clean, ``1`` rule findings, ``2`` usage error or
unparseable source file (``KRN000`` — the offending path is printed to
stderr so a broken file is never mistaken for a rule finding).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from .static.extract import ModuleModel, Program, analyze_paths
from .static.rules import rule_codes, run_rules

__all__ = ["LintFinding", "lint_source", "lint_paths", "main"]

#: the rule subset this alias runs (everything KRN-prefixed).
KRN_CODES = frozenset(c for c in rule_codes() if c.startswith("KRN"))


@dataclass(frozen=True)
class LintFinding:
    path: str
    line: int
    code: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.code} {self.message}"


def lint_source(source: str, path: str = "<string>") -> list[LintFinding]:
    """Lint one module's source text; returns the findings.

    A file that fails to parse yields a single ``KRN000`` finding (the
    library API keeps its historical shape; the CLI maps ``KRN000`` to
    exit code 2 instead of 1).
    """
    try:
        module = ModuleModel(path, source)
    except SyntaxError as exc:
        return [LintFinding(path, exc.lineno or 0, "KRN000",
                            f"syntax error: {exc.msg}")]
    program = Program(modules=[module])
    return [LintFinding(f.path, f.line, f.code, f.message)
            for f in run_rules(program, codes=KRN_CODES)]


def lint_paths(paths: Sequence[str]) -> tuple[list[LintFinding], int]:
    """Lint files/directories; returns ``(findings, files_checked)``."""
    program = analyze_paths(paths)
    findings = [LintFinding(p, line, "KRN000", f"syntax error: {msg}")
                for p, line, msg in program.syntax_errors]
    findings.extend(LintFinding(f.path, f.line, f.code, f.message)
                    for f in run_rules(program, codes=KRN_CODES))
    checked = len(program.modules) + len(program.syntax_errors)
    return sorted(findings, key=lambda f: (f.path, f.line, f.code)), checked


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 2
    missing = [p for p in argv if not Path(p).exists()]
    if missing:
        # A typo'd path in CI must not silently pass as "0 files, clean".
        for p in missing:
            print(f"repro.analysis.lint: error: no such path: {p}",
                  file=sys.stderr)
        return 2
    findings, checked = lint_paths(argv)
    # Unparseable files are a distinct failure mode from rule findings:
    # the offending path goes to stderr and the run exits 2, not 1.
    broken = [f for f in findings if f.code == "KRN000"]
    findings = [f for f in findings if f.code != "KRN000"]
    for f in broken:
        print(f"{f.path}:{f.line}: KRN000 cannot parse file: {f.message}",
              file=sys.stderr)
    for f in findings:
        print(f)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"repro.analysis.lint: {checked} file(s) checked, {status}")
    if broken:
        return 2
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
