"""Dynamic race detector for the virtual GPU (``repro.analysis``).

A :class:`RaceDetector` plugs into the :mod:`repro.vgpu.instrument` hook
point and shadows every access the simulated device issues, in the
spirit of ``cuda-memcheck --tool racecheck`` / ThreadSanitizer:

* **Phase analysis** — plain (non-atomic) writes recorded by the
  instrumented :mod:`repro.vgpu.atomics` are buffered per kernel scope
  and barrier phase.  At each barrier the phase's accesses are analyzed:
  two accesses to the same address from different simulated threads,
  at least one of which is a plain write, are a race — unless the
  address is covered by the conflict engine's ownership marks (below).
  Atomic operations are treated as synchronization and never conflict.

* **Marking-protocol audit** — the 3-phase engine's internal mark
  stores are intentionally racy (``intent="mark"``); they are excluded
  from phase analysis and instead the *outcome* of every marking round
  is audited via :meth:`on_marking`: if two "winning" threads end up
  owning overlapping element sets, that is precisely the Section 7.3
  write-write race (the 2-phase scheme's bug), reported with thread,
  kernel, and phase attribution.  Disjoint winners register exclusive
  element ownership for the remainder of the enclosing kernel scope, so
  winners' apply-phase stores to their own elements stay silent.

* **Memory checking** — allocations from
  :class:`repro.vgpu.memory.DeviceAllocator` are tracked so accesses to
  freed arrays (e.g. a stale reference kept across ``realloc``) report
  use-after-free, repeated frees report double-free, and indices
  outside an array's extent (including negative indices, which NumPy
  would silently wrap) report out-of-bounds.

* **Barrier-divergence checking** — :func:`repro.vgpu.kernel.\
spmd_launch` hands the per-thread barrier counts of every generator
  kernel to :meth:`on_spmd_barriers`; threads reaching different
  barrier counts (the lost-update / deadlock pattern Section 7.3
  reasons about) are reported as findings.

Ownership is registered in the *element-id space*: the marking protocol
grants a thread exclusive access to graph elements, whose state is
conventionally spread over several parallel arrays indexed by element
id, so ownership exempts same-index accesses on any array.  Ownership
tables are replaced wholesale by each marking round (marks are only
valid until the next round) and dropped when their kernel scope ends.

Device arrays are identified by their base buffer; pass whole
allocations (not views) to the instrumented primitives.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np

from ..vgpu import instrument
from ..vgpu.instrument import SanitizerHooks
from .reports import (BARRIER_DIVERGENCE, DOUBLE_FREE, Finding, OUT_OF_BOUNDS,
                      READ_WRITE, USE_AFTER_FREE, WRITE_WRITE,
                      format_findings)

__all__ = ["RaceDetector"]

_MAX_THREADS_PER_FINDING = 8


class _Frame:
    """One kernel scope: buffered accesses plus element ownership."""

    __slots__ = ("name", "phase", "events", "owned")

    def __init__(self, name: str) -> None:
        self.name = name
        self.phase = 0
        #: list of (key, addr int64[], tid int64[], is_write bool)
        self.events: list = []
        #: element id -> owning thread id (replaced per marking round)
        self.owned: dict[int, int] = {}


class RaceDetector(SanitizerHooks):
    """Shadow-memory race detector, memory checker, and barrier checker.

    Usage::

        det = RaceDetector()
        with det.activate():
            result = refine_gpu(mesh)     # or any instrumented driver
        det.assert_clean()                # raises listing findings

    ``reports`` holds :class:`~repro.analysis.reports.Finding` records
    (capped at ``max_reports``; the overflow count is in
    ``suppressed``).
    """

    def __init__(self, *, max_reports: int = 200) -> None:
        self.reports: list[Finding] = []
        self.suppressed = 0
        self.max_reports = max_reports
        self._frames: list[_Frame] = [_Frame("<global>")]
        self._bases: dict[int, np.ndarray] = {}    # key -> base (stable ids)
        self._labels: dict[int, str] = {}
        self._freed: dict[int, np.ndarray] = {}
        self._next_label = 0
        self._anon_tid = 0

    # ------------------------------------------------------------------ #
    # public API                                                         #
    # ------------------------------------------------------------------ #
    @property
    def clean(self) -> bool:
        return not self.reports and not self.suppressed

    def activate(self):
        """Context manager installing this detector as the sanitizer.

        Pending accesses of all open scopes are analyzed on exit.
        """
        @contextmanager
        def _scope():
            with instrument.activate(self):
                try:
                    yield self
                finally:
                    self.flush()
        return _scope()

    @contextmanager
    def kernel(self, name: str):
        """Manual kernel scope for hand-written (test) kernels."""
        self.on_kernel_begin(name)
        try:
            yield self
        finally:
            self.on_kernel_end(name)

    def watch(self, arr: np.ndarray, label: str) -> np.ndarray:
        """Attach a human-readable label to ``arr`` for reports."""
        key = self._key(arr)
        self._labels[key] = label
        return arr

    def flush(self) -> None:
        """Analyze all buffered accesses (innermost scope outward)."""
        for frame in reversed(self._frames):
            self._flush_frame(frame)

    def summary(self) -> str:
        lines = [f"repro.analysis: {len(self.reports)} finding(s)"
                 + (f" (+{self.suppressed} suppressed)" if self.suppressed
                    else "")]
        body = format_findings(self.reports)
        if body:
            lines.append(body)
        return "\n".join(lines)

    def assert_clean(self) -> None:
        """Raise ``AssertionError`` with the full report unless clean."""
        if not self.clean:
            raise AssertionError(self.summary())

    # ------------------------------------------------------------------ #
    # SanitizerHooks implementation                                      #
    # ------------------------------------------------------------------ #
    def on_kernel_begin(self, name: str, **info) -> None:
        self._frames.append(_Frame(name))

    def on_kernel_end(self, name: str) -> None:
        frame = self._frames[-1]
        self._flush_frame(frame)
        if len(self._frames) > 1:
            self._frames.pop()

    def on_barrier(self) -> None:
        frame = self._frames[-1]
        self._flush_frame(frame)
        frame.phase += 1

    def on_write(self, arr, idx, *, tids=None, kind="plain",
                 intent="store") -> None:
        key = self._register(arr)
        addr, extent = self._flatten(arr, idx)
        self._check_memory(key, arr, addr, extent)
        if kind == "atomic" or intent == "mark":
            # Atomics synchronize (never conflict); marking-protocol
            # stores are adjudicated by on_marking instead.
            return
        self._frames[-1].events.append(
            (key, addr, self._tids(tids, addr.size), True))

    def on_read(self, arr, idx, *, tids=None, intent="load") -> None:
        key = self._register(arr)
        addr, extent = self._flatten(arr, idx)
        self._check_memory(key, arr, addr, extent)
        if intent == "mark":
            return
        self._frames[-1].events.append(
            (key, addr, self._tids(tids, addr.size), False))

    def on_alloc(self, arr) -> None:
        key = self._register(arr)
        self._freed.pop(key, None)

    def on_free(self, arr) -> None:
        key = self._register(arr)
        if key in self._freed:
            self._report(Finding(
                kind=DOUBLE_FREE, message="device array freed twice",
                kernel=self._frames[-1].name, phase=self._frames[-1].phase,
                array=self._label(key, arr)))
            return
        self._freed[key] = self._bases[key]

    def on_marking(self, name, claims, winners, *, scheme: str) -> None:
        frame = self._frames[-1]
        winners = np.asarray(winners, dtype=bool)
        if claims.num_rows == 0 or not winners.any():
            return
        rows = claims.row_ids()
        vals = np.asarray(claims.values, dtype=np.int64)
        wmask = winners[rows]
        if not wmask.any():
            self._set_ownership({})
            return
        pairs = np.unique(np.stack([vals[wmask], rows[wmask]]), axis=1)
        waddr, wtid = pairs[0], pairs[1]
        # Elements claimed by >= 2 distinct winning threads: the marking
        # protocol failed to serialize "exclusive" ownership — this is
        # the Section 7.3 write-write race.
        u, start, counts = np.unique(waddr, return_index=True,
                                     return_counts=True)
        overlap = u[counts >= 2]
        for a in overlap.tolist():
            tids = wtid[waddr == a]
            self._report(Finding(
                kind=WRITE_WRITE,
                message=(f"{scheme} marking granted overlapping exclusive "
                         f"ownership of element {a} to "
                         f"{tids.size} threads"),
                kernel=name, phase=frame.phase, array="<elements>",
                address=int(a),
                threads=tuple(int(t) for t in
                              tids[:_MAX_THREADS_PER_FINDING])))
        good = counts == 1
        self._set_ownership(dict(zip(u[good].tolist(),
                                     wtid[start[good]].tolist())))

    def on_spmd_barriers(self, name, counts) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.size == 0 or int(counts.min()) == int(counts.max()):
            return
        lo, hi = int(counts.min()), int(counts.max())
        laggards = np.flatnonzero(counts < hi)
        self._report(Finding(
            kind=BARRIER_DIVERGENCE,
            message=(f"threads reached differing barrier counts "
                     f"(min {lo}, max {hi}; {laggards.size} of "
                     f"{counts.size} threads diverged)"),
            kernel=name, phase=self._frames[-1].phase,
            threads=tuple(int(t) for t in
                          laggards[:_MAX_THREADS_PER_FINDING])))

    # ------------------------------------------------------------------ #
    # internals                                                          #
    # ------------------------------------------------------------------ #
    def _key(self, arr: np.ndarray) -> int:
        base = arr
        while isinstance(base, np.ndarray) and base.base is not None \
                and isinstance(base.base, np.ndarray):
            base = base.base
        return id(base)

    def _register(self, arr: np.ndarray) -> int:
        base = arr
        while isinstance(base, np.ndarray) and base.base is not None \
                and isinstance(base.base, np.ndarray):
            base = base.base
        key = id(base)
        if key not in self._bases:
            self._bases[key] = base    # strong ref keeps id() stable
        return key

    def _label(self, key: int, arr: np.ndarray) -> str:
        if key not in self._labels:
            self._labels[key] = f"arr{self._next_label}" \
                                f"<{arr.dtype}[{arr.size}]>"
            self._next_label += 1
        return self._labels[key]

    def _tids(self, tids, n: int) -> np.ndarray:
        if tids is None:
            # Anonymous lanes: each batch element is its own simulated
            # thread; negative ids keep them apart from caller-named ids.
            out = -1 - np.arange(self._anon_tid, self._anon_tid + n,
                                 dtype=np.int64)
            self._anon_tid += n
            return out
        t = np.asarray(tids, dtype=np.int64).ravel()
        if t.size == n:
            return t
        if t.size == 1:
            return np.full(n, t[0], dtype=np.int64)
        raise ValueError(f"tids length {t.size} != batch length {n}")

    def _flatten(self, arr: np.ndarray, idx) -> tuple[np.ndarray, int]:
        """Flat element addresses plus the checked extent."""
        if isinstance(idx, tuple):
            parts = [np.asarray(p, dtype=np.int64).ravel() for p in idx]
            flat = np.zeros(max((p.size for p in parts), default=0),
                            dtype=np.int64)
            for dim, p in enumerate(parts):
                stride = int(np.prod(arr.shape[dim + 1:], dtype=np.int64))
                flat = flat + p * stride
            return flat, arr.size
        idx = np.asarray(idx)
        if idx.dtype == bool:
            return np.flatnonzero(idx), int(idx.size)
        extent = int(arr.shape[0]) if arr.ndim else 1
        return idx.astype(np.int64, copy=False).ravel(), extent

    def _check_memory(self, key: int, arr: np.ndarray, addr: np.ndarray,
                      extent: int) -> None:
        frame = self._frames[-1]
        if key in self._freed:
            self._report(Finding(
                kind=USE_AFTER_FREE,
                message="access to a freed device array (stale reference "
                        "after free/realloc?)",
                kernel=frame.name, phase=frame.phase,
                array=self._label(key, arr),
                address=int(addr[0]) if addr.size else -1))
        if addr.size:
            bad = (addr < 0) | (addr >= extent)
            if bad.any():
                first = int(addr[np.argmax(bad)])
                self._report(Finding(
                    kind=OUT_OF_BOUNDS,
                    message=(f"{int(bad.sum())} access(es) outside extent "
                             f"[0, {extent}) (negative indices wrap in "
                             f"NumPy but are out of bounds on the device)"),
                    kernel=frame.name, phase=frame.phase,
                    array=self._label(key, arr), address=first))

    def _set_ownership(self, owned: dict[int, int]) -> None:
        # Ownership outlives the marking kernel: it covers the apply
        # stores in the *enclosing* scope, until the next marking round
        # or the end of that scope.
        target = self._frames[-2] if len(self._frames) >= 2 \
            else self._frames[-1]
        target.owned = owned

    def _owner_of(self, a: int) -> int | None:
        for frame in reversed(self._frames):
            if a in frame.owned:
                return frame.owned[a]
        return None

    def _flush_frame(self, frame: _Frame) -> None:
        if not frame.events:
            return
        events, frame.events = frame.events, []
        by_key: dict[int, list] = {}
        for ev in events:
            by_key.setdefault(ev[0], []).append(ev)
        for key, evs in by_key.items():
            addr = np.concatenate([e[1] for e in evs]) if evs else \
                np.empty(0, dtype=np.int64)
            tid = np.concatenate([e[2] for e in evs])
            isw = np.concatenate([np.full(e[1].size, e[3]) for e in evs])
            self._analyze(key, frame, addr, tid, isw)

    def _analyze(self, key: int, frame: _Frame, addr: np.ndarray,
                 tid: np.ndarray, isw: np.ndarray) -> None:
        if addr.size == 0:
            return
        label = self._label(key, self._bases[key])
        u, counts = np.unique(addr, return_counts=True)
        multi = u[counts >= 2]
        # A hazard needs a plain write; restrict to written addresses.
        cand = np.intersect1d(multi, np.unique(addr[isw]),
                              assume_unique=True)
        owned_now = {a for f in self._frames for a in f.owned} \
            | set(frame.owned)
        if owned_now:
            owned_hit = u[np.isin(u, np.fromiter(owned_now, dtype=np.int64,
                                                 count=len(owned_now)))]
            cand = np.union1d(cand, owned_hit)
        for a in cand.tolist():
            sel = addr == a
            t_sel, w_sel = tid[sel], isw[sel]
            writers = np.unique(t_sel[w_sel])
            readers = np.unique(t_sel[~w_sel])
            owner = self._owner_of(a)
            if owner is not None:
                bad_w = writers[writers != owner]
                bad_r = readers[readers != owner]
                if bad_w.size:
                    self._report(Finding(
                        kind=WRITE_WRITE,
                        message=(f"plain write to element {a} exclusively "
                                 f"owned by thread {owner}"),
                        kernel=frame.name, phase=frame.phase, array=label,
                        address=int(a),
                        threads=tuple(int(t) for t in
                                      bad_w[:_MAX_THREADS_PER_FINDING])))
                elif bad_r.size and writers.size:
                    self._report(Finding(
                        kind=READ_WRITE,
                        message=(f"unsynchronized read of element {a} "
                                 f"while owner thread {owner} writes it"),
                        kernel=frame.name, phase=frame.phase, array=label,
                        address=int(a),
                        threads=tuple(int(t) for t in
                                      bad_r[:_MAX_THREADS_PER_FINDING])))
                continue
            if writers.size >= 2:
                self._report(Finding(
                    kind=WRITE_WRITE,
                    message=(f"{writers.size} threads issue unsynchronized "
                             f"plain writes to the same address within one "
                             f"barrier phase; the surviving value is "
                             f"unspecified"),
                    kernel=frame.name, phase=frame.phase, array=label,
                    address=int(a),
                    threads=tuple(int(t) for t in
                                  writers[:_MAX_THREADS_PER_FINDING])))
            elif writers.size == 1:
                others = readers[readers != writers[0]]
                if others.size:
                    self._report(Finding(
                        kind=READ_WRITE,
                        message=(f"read races an unsynchronized plain write "
                                 f"by thread {int(writers[0])} in the same "
                                 f"barrier phase"),
                        kernel=frame.name, phase=frame.phase, array=label,
                        address=int(a),
                        threads=tuple(int(t) for t in np.concatenate(
                            [writers, others])[:_MAX_THREADS_PER_FINDING])))

    def _report(self, finding: Finding) -> None:
        if len(self.reports) >= self.max_reports:
            self.suppressed += 1
            return
        self.reports.append(finding)
