"""Finding records produced by the :mod:`repro.analysis` sanitizer.

Every detector layer — the dynamic race detector, the memory checker,
and the barrier-divergence checker — reports through one uniform
:class:`Finding` record so callers (tests, the ``--sanitize`` pytest
guard, CI) can assert on, filter, and pretty-print findings the same
way regardless of which layer produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "Finding",
    "WRITE_WRITE", "READ_WRITE", "OUT_OF_BOUNDS", "USE_AFTER_FREE",
    "DOUBLE_FREE", "BARRIER_DIVERGENCE",
    "format_findings",
]

#: two unsynchronized plain writes (or "exclusive" owners) on one address
WRITE_WRITE = "write-write"
#: a plain write racing an unsynchronized read of the same address
READ_WRITE = "read-write"
#: an access outside a device allocation's extent (incl. negative index)
OUT_OF_BOUNDS = "out-of-bounds"
#: an access to a freed device allocation (stale array after realloc)
USE_AFTER_FREE = "use-after-free"
#: ``cudaFree`` of an already-freed allocation
DOUBLE_FREE = "double-free"
#: threads of one SPMD kernel reached different barrier counts
BARRIER_DIVERGENCE = "barrier-divergence"


@dataclass(frozen=True)
class Finding:
    """One sanitizer finding, with thread/kernel/phase attribution.

    ``kernel`` is the innermost kernel scope active when the hazard was
    observed (``"<global>"`` for accesses outside any kernel scope) and
    ``phase`` the barrier-phase index within it.  ``threads`` lists the
    simulated thread ids involved (capped; anonymous batch lanes get
    synthetic ids).  ``address`` is the flat element index within the
    array identified by ``array`` (a label or a shape/dtype signature).
    """

    kind: str
    message: str
    kernel: str = "<global>"
    phase: int = 0
    array: str = ""
    address: int = -1
    threads: tuple = field(default_factory=tuple)

    def __str__(self) -> str:
        where = f"{self.kernel}/phase{self.phase}"
        loc = f" {self.array}[{self.address}]" if self.address >= 0 else \
            (f" {self.array}" if self.array else "")
        who = f" threads={list(self.threads)}" if self.threads else ""
        return f"[{self.kind}] {where}:{loc}{who} — {self.message}"


def format_findings(findings: Iterable[Finding]) -> str:
    """Multi-line report, one finding per line (empty string if clean)."""
    return "\n".join(str(f) for f in findings)
