"""``repro.analysis`` — the kernel sanitizer subsystem.

Turns "races are simulated" into "races are detected, attributed, and
reported", in the spirit of ``cuda-memcheck --tool racecheck`` and
ThreadSanitizer, with three layers:

* :class:`RaceDetector` (:mod:`.race`) — a dynamic race detector fed by
  the instrumented :mod:`repro.vgpu` substrate: shadow read/write sets
  per kernel scope and barrier phase, a marking-protocol audit that
  catches the Section 7.3 two-phase bug (overlapping "exclusive"
  winners), out-of-bounds / use-after-free checking against
  :class:`repro.vgpu.memory.DeviceAllocator` extents, and a
  barrier-divergence checker for SPMD generator kernels.
* :mod:`.reports` — uniform :class:`Finding` records with
  thread/kernel/phase attribution.
* :mod:`.static` — the whole-program kernel effect analyzer
  (``python -m repro.analysis.static src/repro``): per-kernel effect
  summaries (reads/writes/atomics/allocator handles per barrier
  interval) verified against static race (STA201), barrier-divergence
  (STA202), allocator-lifetime (STA203), determinism (STA204) and
  manifest-drift (STA205) rules, plus the folded ``KRN101``–``KRN104``
  lint rules.  :mod:`.lint` remains as a thin deprecated alias running
  just the KRN subset.

Every algorithm driver takes an opt-in ``sanitizer=`` keyword::

    from repro.analysis import RaceDetector
    from repro.dmr import refine_gpu

    det = RaceDetector()
    refine_gpu(mesh, sanitizer=det)
    det.assert_clean()

See ``docs/SANITIZER.md`` for the full usage guide.
"""

from .race import RaceDetector
from .reports import (BARRIER_DIVERGENCE, DOUBLE_FREE, Finding,
                      OUT_OF_BOUNDS, READ_WRITE, USE_AFTER_FREE,
                      WRITE_WRITE, format_findings)

__all__ = [
    "RaceDetector", "Finding", "format_findings",
    "WRITE_WRITE", "READ_WRITE", "OUT_OF_BOUNDS", "USE_AFTER_FREE",
    "DOUBLE_FREE", "BARRIER_DIVERGENCE",
    "LintFinding", "lint_source", "lint_paths",
]

_LINT_NAMES = {"LintFinding", "lint_source", "lint_paths"}


def __getattr__(name):
    # Lazy: keeps ``python -m repro.analysis.lint`` from double-importing
    # the lint module through the package init.
    if name in _LINT_NAMES:
        from . import lint
        return getattr(lint, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
