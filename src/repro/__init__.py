"""repro — a reproduction of "Morph Algorithms on GPUs" (PPoPP 2013).

Morph algorithms add and remove nodes and edges of their graph while
running.  This package rebuilds the paper's whole stack in Python:

* :mod:`repro.core` — the morph toolkit: dynamic CSR graphs, 3-phase
  conflict resolution, subgraph addition/deletion strategies, adaptive
  kernel configuration, local worklists, layout and divergence
  optimizations, ParaMeter-style parallelism profiling.
* :mod:`repro.vgpu` — the simulated bulk-synchronous GPU (a Tesla
  C2070 stand-in): launch geometry, atomics with simulated races,
  barrier models, device memory allocators, and the counts-to-seconds
  cost model used by every experiment.
* The four morph algorithms, each with GPU-style and baseline
  implementations: :mod:`repro.dmr` (Delaunay mesh refinement over the
  :mod:`repro.meshing` substrate), :mod:`repro.satsp` (survey
  propagation), :mod:`repro.pta` (Andersen points-to analysis), and
  :mod:`repro.mst` (Boruvka minimum spanning tree over
  :mod:`repro.graphgen` inputs).

Quick start::

    from repro.meshing import random_mesh
    from repro.dmr import refine_gpu
    from repro.vgpu import CostModel

    mesh = random_mesh(20_000, seed=1)
    result = refine_gpu(mesh)
    assert result.converged
    print(CostModel().gpu_time(result.counter))
"""

__version__ = "1.0.0"

from . import core, vgpu

__all__ = ["core", "vgpu", "__version__"]
