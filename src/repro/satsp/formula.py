"""k-SAT formulas: representation, random generation, DIMACS I/O.

The paper's SP inputs are random K-SAT instances at the *hard* clause-
to-literal ratios from Mertens et al. [21] (Fig. 9): 4.2 for K = 3,
9.9 for K = 4, 21.1 for K = 5 and 43.4 for K = 6.  :func:`random_ksat`
draws clauses with ``K`` distinct variables and independent random
negations — the standard ensemble.

A formula with exactly K literals per clause is stored densely as an
``(m, K)`` variable-index matrix plus an ``(m, K)`` sign matrix
(+1 positive literal, -1 negated), matching the paper's direct-offset
clause-to-literal mapping (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["CNF", "random_ksat", "HARD_RATIOS", "write_dimacs", "read_dimacs"]

#: Hard clause-to-literal ratios per K (Mertens, Mezard & Zecchina 2006),
#: as used in the paper's Fig. 9.
HARD_RATIOS = {3: 4.2, 4: 9.9, 5: 21.1, 6: 43.4}


@dataclass
class CNF:
    """A K-uniform CNF formula."""

    num_vars: int
    vars: np.ndarray   # (m, K) int64 variable indices
    signs: np.ndarray  # (m, K) int8, +1 positive / -1 negated

    def __post_init__(self) -> None:
        self.vars = np.ascontiguousarray(self.vars, dtype=np.int64)
        self.signs = np.ascontiguousarray(self.signs, dtype=np.int8)
        if self.vars.shape != self.signs.shape or self.vars.ndim != 2:
            raise ValueError("vars/signs must be matching (m, K) matrices")
        if self.vars.size and (self.vars.min() < 0
                               or self.vars.max() >= self.num_vars):
            raise ValueError("variable index out of range")
        if self.vars.size and not np.all(np.abs(self.signs) == 1):
            raise ValueError("signs must be +-1")

    @property
    def num_clauses(self) -> int:
        return self.vars.shape[0]

    @property
    def k(self) -> int:
        return self.vars.shape[1]

    @property
    def ratio(self) -> float:
        return self.num_clauses / self.num_vars if self.num_vars else 0.0

    def check(self, assignment: np.ndarray) -> bool:
        """True iff the boolean ``assignment`` satisfies every clause."""
        vals = assignment[self.vars]                    # (m, K) bool
        lit = np.where(self.signs > 0, vals, ~vals)
        return bool(np.all(lit.any(axis=1)))

    def clause_satisfied(self, assignment: np.ndarray) -> np.ndarray:
        vals = assignment[self.vars]
        return np.where(self.signs > 0, vals, ~vals).any(axis=1)


def random_ksat(num_vars: int, k: int = 3, ratio: float | None = None,
                num_clauses: int | None = None, seed: int = 0) -> CNF:
    """Random K-SAT with distinct variables per clause.

    Exactly one of ``ratio`` (clauses = ratio * vars, default the hard
    ratio for ``k``) or ``num_clauses`` may be given.
    """
    if num_vars < k:
        raise ValueError("need at least k variables")
    if num_clauses is None:
        if ratio is None:
            ratio = HARD_RATIOS.get(k)
            if ratio is None:
                raise ValueError(f"no hard ratio known for K={k}")
        num_clauses = int(round(ratio * num_vars))
    rng = np.random.default_rng(seed)
    # Draw K distinct variables per clause by ranking random keys.
    keys = rng.random((num_clauses, num_vars)) if num_vars <= 64 else None
    if keys is not None:
        vars_ = np.argsort(keys, axis=1)[:, :k].astype(np.int64)
    else:
        # Memory-friendly path: rejection sampling, vectorized retries.
        vars_ = rng.integers(0, num_vars, size=(num_clauses, k), dtype=np.int64)
        while True:
            srt = np.sort(vars_, axis=1)
            dup = (srt[:, 1:] == srt[:, :-1]).any(axis=1)
            n_dup = int(dup.sum())
            if n_dup == 0:
                break
            vars_[dup] = rng.integers(0, num_vars, size=(n_dup, k))
    signs = rng.choice(np.array([-1, 1], dtype=np.int8), size=(num_clauses, k))
    return CNF(num_vars=num_vars, vars=vars_, signs=signs)


def write_dimacs(path, cnf: CNF) -> None:
    with open(path, "w") as f:
        f.write(f"p cnf {cnf.num_vars} {cnf.num_clauses}\n")
        for row_v, row_s in zip(cnf.vars, cnf.signs):
            lits = " ".join(str(int(s) * (int(v) + 1))
                            for v, s in zip(row_v, row_s))
            f.write(lits + " 0\n")


def read_dimacs(path) -> CNF:
    num_vars = 0
    clauses: list[list[int]] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line or line.startswith(("c", "%")):
            continue
        if line.startswith("p"):
            parts = line.split()
            num_vars = int(parts[2])
            continue
        lits = [int(t) for t in line.split() if t != "0"]
        if lits:
            clauses.append(lits)
    if not clauses:
        raise ValueError("no clauses found")
    k = len(clauses[0])
    if any(len(c) != k for c in clauses):
        raise ValueError("only K-uniform formulas supported")
    arr = np.asarray(clauses, dtype=np.int64)
    return CNF(num_vars=num_vars, vars=np.abs(arr) - 1,
               signs=np.sign(arr).astype(np.int8))
