"""The SP factor graph (paper Sections 3 and 6.3).

"We split the graph nodes into two arrays and store the clauses
separately from the literals ...  each clause has a small limit on the
number of literals it can contain ... this allows accessing literals in
a clause using a direct offset calculation ...  the literal-to-clause
mapping uses the standard CSR format."

:class:`FactorGraph` keeps the paper's layout:

* the dense clause-side view: edge ``e = a * K + k`` is clause ``a``'s
  ``k``-th literal (``evar``, ``esign`` flat arrays);
* the variable-side CSR view: edges sorted by ``(variable, sign)`` with
  segment offsets, which is what the survey update's neighbor products
  reduce over;
* per-edge survey ``eta`` and liveness, per-clause liveness, per-variable
  fixed state — node deletion is *marking* (Section 7.2), as decimation
  is infrequent.

Decimation (:meth:`FactorGraph.decimate`) fixes the most biased
variables, removes satisfied clauses and falsified literals, and
propagates the resulting unit clauses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .formula import CNF

__all__ = ["FactorGraph", "group_products", "exclude_one"]

_ZERO = 1e-300


def group_products(values: np.ndarray, zero_mask: np.ndarray,
                   seg_starts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-segment (product of non-"zero" values, count of "zeros").

    ``values`` must already be in segment order; ``seg_starts`` are
    reduceat boundaries.  The zero-count trick makes exclude-one
    products exact even when some factors are 0 (surveys of exactly 1).
    """
    nz = np.where(zero_mask, 1.0, values)
    prod = np.multiply.reduceat(nz, seg_starts) if values.size else \
        np.empty(0)
    zc = np.add.reduceat(zero_mask.astype(np.int64), seg_starts) \
        if values.size else np.empty(0, dtype=np.int64)
    return prod, zc


def exclude_one(prod_nz: np.ndarray, zero_count: np.ndarray,
                value: np.ndarray, is_zero: np.ndarray) -> np.ndarray:
    """Product of a group excluding one member, from group aggregates."""
    safe = np.where(is_zero, 1.0, value)
    return np.where(
        is_zero,
        np.where(zero_count == 1, prod_nz, 0.0),
        np.where(zero_count == 0, prod_nz / safe, 0.0),
    )


@dataclass
class DecimationReport:
    fixed: int = 0
    units_propagated: int = 0
    clauses_removed: int = 0
    edges_removed: int = 0
    contradiction: bool = False


class FactorGraph:
    def __init__(self, cnf: CNF, seed: int = 0) -> None:
        self.cnf = cnf
        m, k = cnf.num_clauses, cnf.k
        self.n = cnf.num_vars
        self.m = m
        self.k = k
        self.evar = cnf.vars.ravel().copy()
        self.esign = cnf.signs.ravel().astype(np.int64)
        self.eclause = np.repeat(np.arange(m, dtype=np.int64), k)
        ne = self.evar.size
        rng = np.random.default_rng(seed)
        self.eta = rng.random(ne)          # standard random initialization
        self.live_edge = np.ones(ne, dtype=bool)
        self.live_clause = np.ones(m, dtype=bool)
        #: -1 unfixed, 0 fixed False, 1 fixed True
        self.fixed = np.full(self.n, -1, dtype=np.int8)

        # Variable-side CSR, grouped by (variable, sign): gid in [0, 2n).
        self.gid = self.evar * 2 + (self.esign > 0)
        self.vs_order = np.argsort(self.gid, kind="stable")
        sorted_gid = self.gid[self.vs_order]
        # segment start for every gid (empty groups handled via searchsorted)
        self.seg_starts = np.searchsorted(sorted_gid, np.arange(2 * self.n))
        # reduceat needs starts < len; record empties to patch afterwards.
        self._group_empty = np.concatenate(
            [self.seg_starts[1:] == self.seg_starts[:-1],
             [self.seg_starts[-1] >= ne]]) if ne else np.ones(2 * self.n, bool)
        self._order_pos = np.empty(ne, dtype=np.int64)
        self._order_pos[self.vs_order] = np.arange(ne)

    # ------------------------------------------------------------------ #
    @property
    def num_live_edges(self) -> int:
        return int(self.live_edge.sum())

    @property
    def num_live_clauses(self) -> int:
        return int(self.live_clause.sum())

    @property
    def num_unfixed(self) -> int:
        return int((self.fixed < 0).sum())

    def group_aggregate(self, edge_values: np.ndarray,
                        edge_zero: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-(var, sign) products of ``edge_values`` with zero counts.

        Dead edges must already be neutralized (value 1, not zero) by
        the caller.  Empty groups report product 1, zero-count 0.
        """
        ne = self.evar.size
        if ne == 0:
            return np.ones(2 * self.n), np.zeros(2 * self.n, dtype=np.int64)
        sv = edge_values[self.vs_order]
        sz = edge_zero[self.vs_order]
        starts = np.minimum(self.seg_starts, ne - 1)
        prod, zc = group_products(sv, sz, starts)
        prod = np.where(self._group_empty, 1.0, prod)
        zc = np.where(self._group_empty, 0, zc)
        return prod, zc

    # ------------------------------------------------------------------ #
    def biases(self) -> np.ndarray:
        """Per-variable bias W(true) - W(false); 0 for fixed variables."""
        t = np.where(self.live_edge, 1.0 - self.eta, 1.0)
        z = self.live_edge & (t <= _ZERO)
        prod, zc = self.group_aggregate(t, z)
        p_pos = np.where(zc[1::2] == 0, prod[1::2], 0.0)  # gid 2v+1: sign +
        p_neg = np.where(zc[0::2] == 0, prod[0::2], 0.0)
        pi_plus = (1.0 - p_pos) * p_neg
        pi_minus = (1.0 - p_neg) * p_pos
        pi_zero = p_pos * p_neg
        denom = pi_plus + pi_minus + pi_zero
        with np.errstate(invalid="ignore", divide="ignore"):
            bias = np.where(denom > 0, (pi_plus - pi_minus) / denom, 0.0)
        bias[self.fixed >= 0] = 0.0
        return bias

    # ------------------------------------------------------------------ #
    def decimate(self, bias: np.ndarray, fraction: float = 0.01,
                 min_bias: float = 0.0, at_least: int = 1) -> DecimationReport:
        """Fix the most biased variables and simplify the graph."""
        rep = DecimationReport()
        unfixed = np.flatnonzero(self.fixed < 0)
        if unfixed.size == 0:
            return rep
        mag = np.abs(bias[unfixed])
        want = max(at_least, int(fraction * unfixed.size))
        order = np.argsort(-mag, kind="stable")[:want]
        chosen = unfixed[order]
        chosen = chosen[np.abs(bias[chosen]) >= min_bias]
        if chosen.size == 0:
            return rep
        values = (bias[chosen] > 0).astype(np.int8)
        # Unbiased coin for exact zero bias.
        zero = bias[chosen] == 0
        if zero.any():
            values[zero] = np.random.default_rng(int(chosen[0])).integers(
                0, 2, size=int(zero.sum()), dtype=np.int8)
        return self.assign(chosen, values, rep)

    def assign(self, variables: np.ndarray, values: np.ndarray,
               rep: DecimationReport | None = None) -> DecimationReport:
        """Fix ``variables`` to ``values`` and simplify; propagates units."""
        rep = rep or DecimationReport()
        queue = list(zip(np.asarray(variables).tolist(),
                         np.asarray(values).tolist()))
        while queue:
            v, val = queue.pop()
            if self.fixed[v] >= 0:
                if int(self.fixed[v]) != int(val):
                    rep.contradiction = True
                    return rep
                continue
            self.fixed[v] = val
            rep.fixed += 1
            # All live edges of v, via the two sign groups.
            edges = self._edges_of_var(v)
            edges = edges[self.live_edge[edges]]
            if edges.size == 0:
                continue
            sat = (self.esign[edges] > 0) == bool(val)
            # Satisfied clauses die entirely.
            for a in np.unique(self.eclause[edges[sat]]).tolist():
                if self.live_clause[a]:
                    self._kill_clause(a, rep)
            # Falsified literals leave their clauses.
            for e in edges[~sat].tolist():
                if not self.live_edge[e]:
                    continue
                self.live_edge[e] = False
                rep.edges_removed += 1
                a = int(self.eclause[e])
                if not self.live_clause[a]:
                    continue
                row = self._clause_edges(a)
                live = row[self.live_edge[row]]
                if live.size == 0:
                    rep.contradiction = True
                    return rep
                if live.size == 1:
                    # Unit clause: its literal is forced.
                    u = int(live[0])
                    queue.append((int(self.evar[u]),
                                  int(self.esign[u] > 0)))
                    rep.units_propagated += 1
        return rep

    def _edges_of_var(self, v: int) -> np.ndarray:
        ne = self.evar.size
        lo = self.seg_starts[2 * v]
        hi = self.seg_starts[2 * v + 2] if 2 * v + 2 < self.seg_starts.size \
            else ne
        return self.vs_order[lo:hi]

    def _clause_edges(self, a: int) -> np.ndarray:
        return np.arange(a * self.k, (a + 1) * self.k, dtype=np.int64)

    def _kill_clause(self, a: int, rep: DecimationReport) -> None:
        row = self._clause_edges(a)
        live = row[self.live_edge[row]]
        self.live_edge[live] = False
        rep.edges_removed += int(live.size)
        self.live_clause[a] = False
        rep.clauses_removed += 1
        self.eta[row] = 0.0

    # ------------------------------------------------------------------ #
    def residual_cnf(self) -> tuple[CNF, np.ndarray, np.ndarray]:
        """Remaining sub-formula over unfixed variables, padded to width K.

        Returns ``(cnf, var_map, clause_ids)`` where ``var_map`` maps
        residual variable ids back to originals.  Clauses narrower than
        K are padded by repeating their first literal (harmless for
        satisfiability).
        """
        live_c = np.flatnonzero(self.live_clause)
        unfixed = np.flatnonzero(self.fixed < 0)
        var_map_rev = np.full(self.n, -1, dtype=np.int64)
        var_map_rev[unfixed] = np.arange(unfixed.size)
        rows_v = []
        rows_s = []
        for a in live_c.tolist():
            row = self._clause_edges(a)
            live = row[self.live_edge[row]]
            vs = var_map_rev[self.evar[live]]
            ss = self.esign[live]
            assert np.all(vs >= 0), "live edge on fixed variable"
            pad = self.k - vs.size
            if pad:
                vs = np.concatenate([vs, np.repeat(vs[:1], pad)])
                ss = np.concatenate([ss, np.repeat(ss[:1], pad)])
            rows_v.append(vs)
            rows_s.append(ss)
        if rows_v:
            cnf = CNF(num_vars=int(unfixed.size),
                      vars=np.vstack(rows_v),
                      signs=np.vstack(rows_s).astype(np.int8))
        else:
            cnf = CNF(num_vars=int(unfixed.size),
                      vars=np.empty((0, self.k), dtype=np.int64),
                      signs=np.empty((0, self.k), dtype=np.int8))
        return cnf, unfixed, live_c

    def full_assignment(self, residual_assignment: np.ndarray | None = None,
                        var_map: np.ndarray | None = None) -> np.ndarray:
        """Combine fixed variables with a residual solver's assignment."""
        out = self.fixed.copy()
        if residual_assignment is not None:
            out[var_map] = residual_assignment.astype(np.int8)
        out[out < 0] = 0  # don't-care variables default to False
        return out.astype(bool)
