"""Survey propagation (paper Section 3; Braunstein, Mezard & Zecchina [4]).

One SP phase iterates the survey update over every live factor-graph
edge until the largest change drops below epsilon (or an iteration cap
fires), then computes per-variable biases and *decimates* — fixes the
most biased variables and simplifies the graph.  Phases repeat until
only trivial surveys remain or few variables are left, at which point
the residual formula goes to a simple solver (WalkSAT here).

Update equations (BMZ eqs. 26-27), for edge ``a -> i`` and each other
variable ``j`` of clause ``a``::

    PI_u(j->a) = (1 - prod_{b in O}(1 - eta_bj)) * prod_{b in S\\a}(1 - eta_bj)
    PI_s(j->a) = (1 - prod_{b in S\\a}(1 - eta_bj)) * prod_{b in O}(1 - eta_bj)
    PI_0(j->a) = prod_{b in V(j)\\a}(1 - eta_bj)
    eta_ai     = prod_{j in a\\i}  PI_u / (PI_u + PI_s + PI_0)

where ``S`` are clauses where ``j`` appears with the same sign as in
``a`` and ``O`` the opposite sign.  All products are evaluated with
group aggregates + the zero-count trick (exact exclude-one even with
surveys of exactly 1) — this is the paper's *edge caching*: per-edge
work is O(1) after two aggregate passes.  The multicore baseline lacks
that cache (Section 8.2), re-walking each variable's and clause's
neighbor lists per edge; :func:`survey_iteration` models that by
counting degree-proportional word traffic in uncached mode.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.counters import OpCounter
from ..resilience.policy import launch_ok, maybe_activate_resilience
from ..vgpu.instrument import (current_tracer, maybe_activate,
                               maybe_activate_tracer, trace_span)
from .factorgraph import FactorGraph, exclude_one, _ZERO
from .formula import CNF
from .walksat import walksat

__all__ = ["SPConfig", "SPResult", "survey_iteration", "run_sp",
           "solve_sp", "serve_job"]


@dataclass
class SPConfig:
    eps: float = 1e-3              # survey convergence threshold
    max_iters: int = 1000          # per SP phase
    damping: float = 0.5           # 0 = pure Jacobi; >0 stabilizes small n
    decimation_fraction: float = 0.01
    trivial_threshold: float = 0.01  # all surveys below -> paramagnetic
    solver_cutoff: int = 256       # hand off when this few vars remain
    #: hand off to the simple solver once the residual clause-to-variable
    #: ratio drops below this: the sub-formula is then out of the hard
    #: phase and WalkSAT finishes it quickly (BMZ stop when surveys go
    #: trivial, which happens in the same regime)
    handoff_ratio: float = 3.0
    #: WalkSAT flip budget; None scales with the residual size (bounded)
    walksat_flips: int | None = None
    seed: int = 0
    cached: bool = True            # paper's GPU edge cache (off = multicore)
    #: hand off rather than decimate when a phase hits max_iters without
    #: the surveys converging (BMZ treat non-convergence as failure)
    require_convergence: bool = True
    max_phases: int = 10_000


@dataclass
class SPResult:
    status: str                    # "SAT" | "UNKNOWN" | "CONTRADICTION"
    assignment: np.ndarray | None
    counter: OpCounter
    phases: int
    total_iterations: int
    fixed_by_sp: int
    solved_by_walksat: int

    @property
    def sat(self) -> bool:
        return self.status == "SAT"


def survey_iteration(fg: FactorGraph, *, counter: OpCounter | None = None,
                     cached: bool = True, damping: float = 0.0,
                     kernel: str = "sp.update") -> float:
    """One Jacobi sweep of the survey update; returns max |change|."""
    ne = fg.evar.size
    t = np.where(fg.live_edge, 1.0 - fg.eta, 1.0)
    tz = fg.live_edge & (t <= _ZERO)
    prod, zc = fg.group_aggregate(t, tz)

    gid = fg.gid
    opp = gid ^ 1
    p_same_excl = exclude_one(prod[gid], zc[gid], t, tz)
    p_same_excl = np.where(fg.live_edge, p_same_excl,
                           np.where(zc[gid] == 0, prod[gid], 0.0))
    p_opp = np.where(zc[opp] == 0, prod[opp], 0.0)

    pi_u = (1.0 - p_opp) * p_same_excl
    pi_s = (1.0 - p_same_excl) * p_opp
    pi_0 = p_same_excl * p_opp
    denom = pi_u + pi_s + pi_0
    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(denom > 0, pi_u / denom, 0.0)
    ratio = np.where(fg.live_edge, ratio, 1.0)  # dead edges are neutral

    # Clause-side exclude-one product over the dense (m, K) rows.
    rr = ratio.reshape(fg.m, fg.k)
    rz = rr <= _ZERO
    rnz = np.where(rz, 1.0, rr)
    row_prod = rnz.prod(axis=1)
    row_zc = rz.sum(axis=1)
    eta_new = exclude_one(np.repeat(row_prod, fg.k),
                          np.repeat(row_zc, fg.k), ratio, rz.ravel())
    eta_new = np.where(fg.live_edge, eta_new, 0.0)

    if damping > 0.0:
        eta_new = damping * fg.eta + (1.0 - damping) * eta_new
        eta_new = np.where(fg.live_edge, eta_new, 0.0)
    delta = float(np.max(np.abs(eta_new - fg.eta))) if ne else 0.0
    fg.eta = eta_new

    if counter is not None:
        live = fg.num_live_edges
        if cached:
            reads = 8 * live           # aggregates + O(1) per edge
        else:
            # Uncached: each edge re-walks its variable's incident list
            # (~2 K alpha edges) and its clause's K-1 siblings.
            deg = 2.0 * ne / max(1, fg.n)
            reads = int(live * (3 * deg + 3 * fg.k))
        counter.launch(kernel, items=live, word_reads=reads,
                       word_writes=live, barriers=1,
                       work_per_thread=np.full(max(1, live), 3 if cached
                                               else int(3 + deg)))
    return delta


def run_sp(fg: FactorGraph, cfg: SPConfig,
           counter: OpCounter | None = None, *,
           sanitizer=None, tracer=None,
           resilience=None) -> tuple[int, int, bool]:
    """Run SP phases with decimation until trivial/small/contradiction.

    Returns ``(phases, total_iterations, contradiction)``.
    ``sanitizer`` (opt-in) activates a :mod:`repro.analysis` detector
    around the run so the device primitives report to it; ``tracer``
    (opt-in) records SP phases as a :mod:`repro.obs` span hierarchy.
    ``resilience`` (opt-in) re-issues SP phases refused by a transient
    injected kernel abort; without it, the fault propagates typed.
    """
    with maybe_activate(sanitizer):
        with maybe_activate_tracer(tracer):
            with maybe_activate_resilience(resilience):
                with trace_span("satsp.run_sp", cat="driver"):
                    return _run_sp_impl(fg, cfg, counter, resilience)


def _run_sp_impl(fg: FactorGraph, cfg: SPConfig,
                 counter: OpCounter | None,
                 resil=None) -> tuple[int, int, bool]:
    rng = np.random.default_rng(cfg.seed)
    phases = iters = 0
    while phases < cfg.max_phases:
        if fg.num_unfixed <= cfg.solver_cutoff or fg.num_live_clauses == 0:
            break
        if fg.num_live_clauses < cfg.handoff_ratio * fg.num_unfixed:
            break  # residual formula left the hard phase
        if not launch_ok(resil, "sp.phase"):
            continue    # absorbed transient abort: re-issue the phase
        phases += 1
        tr = current_tracer()
        if tr is not None:
            tr.on_span_begin("sp.phase", cat="iteration", phase=phases)
            tr.on_gauge("sp.unfixed", fg.num_unfixed)
            tr.on_gauge("sp.live_clauses", fg.num_live_clauses)
        for _ in range(cfg.max_iters):
            iters += 1
            delta = survey_iteration(fg, counter=counter, cached=cfg.cached,
                                      damping=cfg.damping)
            if delta < cfg.eps:
                break
        if delta >= cfg.eps and cfg.require_convergence:
            if tr is not None:
                tr.on_span_end()
            break  # unconverged surveys: decimating on them is noise
        bias = fg.biases()
        if counter is not None:
            counter.launch("sp.bias", items=fg.num_unfixed,
                           word_reads=4 * fg.num_live_edges,
                           word_writes=fg.n, barriers=1)
        live_eta = fg.eta[fg.live_edge]
        unfixed = fg.fixed < 0
        trivial_surveys = live_eta.size == 0 or \
            float(live_eta.max()) < cfg.trivial_threshold
        if trivial_surveys or not np.any(np.abs(bias[unfixed])
                                         > cfg.trivial_threshold):
            if tr is not None:
                tr.on_span_end()
            break  # paramagnetic state: hand off to the simple solver
        rep = fg.decimate(bias, fraction=cfg.decimation_fraction,
                          at_least=1)
        if counter is not None:
            counter.launch("sp.decimate", items=rep.fixed,
                           word_writes=2 * rep.edges_removed + rep.fixed,
                           atomics=rep.clauses_removed, barriers=1)
        if tr is not None:
            tr.on_span_end()
        if rep.contradiction:
            return phases, iters, True
        _ = rng  # reserved for future randomized decimation policies
    return phases, iters, False


def solve_sp(cnf: CNF, cfg: SPConfig | None = None,
             counter: OpCounter | None = None, *,
             sanitizer=None, tracer=None, resilience=None) -> SPResult:
    """Full pipeline: SP + decimation, then WalkSAT on the residual."""
    cfg = cfg or SPConfig()
    ctr = counter or OpCounter()
    fg = FactorGraph(cnf, seed=cfg.seed)
    phases, iters, contradiction = run_sp(fg, cfg, ctr,
                                          sanitizer=sanitizer,
                                          tracer=tracer,
                                          resilience=resilience)
    if contradiction:
        return SPResult("CONTRADICTION", None, ctr, phases, iters,
                        fixed_by_sp=int((fg.fixed >= 0).sum()),
                        solved_by_walksat=0)
    residual, var_map, _ = fg.residual_cnf()
    fixed_by_sp = int((fg.fixed >= 0).sum())
    if residual.num_clauses == 0:
        assignment = fg.full_assignment()
        status = "SAT" if cnf.check(assignment) else "UNKNOWN"
        return SPResult(status, assignment if status == "SAT" else None,
                        ctr, phases, iters, fixed_by_sp, 0)
    flips = cfg.walksat_flips
    if flips is None:
        flips = min(max(50_000, 100 * residual.num_vars), 300_000)
    with maybe_activate_tracer(tracer):
        with trace_span("satsp.walksat", cat="driver",
                        residual_vars=residual.num_vars):
            ws = walksat(residual, max_flips=flips, seed=cfg.seed,
                         restarts=2, counter=ctr)
    if ws is None:
        return SPResult("UNKNOWN", None, ctr, phases, iters, fixed_by_sp, 0)
    assignment = fg.full_assignment(ws, var_map)
    status = "SAT" if cnf.check(assignment) else "UNKNOWN"
    return SPResult(status, assignment if status == "SAT" else None, ctr,
                    phases, iters, fixed_by_sp,
                    solved_by_walksat=int(residual.num_vars))


# ------------------------------------------------------------------ #
# repro.serve adapter                                                #
# ------------------------------------------------------------------ #

def serve_job(params, strategy, seed, ctx):
    """Job adapter for :mod:`repro.serve` (``algorithm="sp"``).

    Builds a random K-SAT formula (``num_vars``, ``k``, ``ratio``) from
    ``seed`` and runs the full SP + WalkSAT pipeline.  ``strategy``
    keys map onto :class:`SPConfig`: ``cached`` (the paper's GPU edge
    cache; False models the multicore baseline), ``damping``, ``eps``,
    ``decimation_fraction``, ``require_convergence``.
    ``strategy="auto"`` substitutes the :mod:`repro.tune`
    cached/tuned configuration, and unknown keys raise ``ValueError``.
    ``params["mutations"]`` may carry an ``add_clauses``/``drop_clauses``
    stream (:mod:`repro.serve.mutations`) applied to the generated
    formula before solving.
    """
    from ..serve.mutations import apply_clause_mutations, check_mutations
    from ..tune import resolve_strategy
    from .formula import random_ksat

    strategy = resolve_strategy("sp", params, strategy)
    mutations = check_mutations("sp", params.get("mutations", ()))
    cnf = random_ksat(int(params.get("num_vars", 200)),
                      int(params.get("k", 3)),
                      ratio=float(params.get("ratio", 3.2)),
                      seed=seed)
    if mutations:
        cnf = apply_clause_mutations(cnf, mutations)
    kwargs = {k: strategy[k] for k in
              ("cached", "damping", "eps", "decimation_fraction",
               "require_convergence") if k in strategy}
    res = solve_sp(cnf, SPConfig(seed=seed, **kwargs), counter=ctx.counter,
                   resilience=getattr(ctx, "resilience", None))
    assignment = (res.assignment if res.assignment is not None
                  else np.zeros(0, dtype=np.int64))
    summary = {"status": res.status, "phases": res.phases,
               "total_iterations": res.total_iterations,
               "fixed_by_sp": res.fixed_by_sp,
               "solved_by_walksat": res.solved_by_walksat}
    return (assignment,), summary
