"""Survey Propagation SAT solving (paper Sections 3, 6.3, 8.2)."""

from .formula import CNF, HARD_RATIOS, random_ksat, read_dimacs, write_dimacs
from .factorgraph import FactorGraph
from .sp import SPConfig, SPResult, run_sp, solve_sp, survey_iteration
from .walksat import walksat
from .dpll import DPLLBudgetExceeded, dpll

__all__ = [
    "CNF", "HARD_RATIOS", "random_ksat", "read_dimacs", "write_dimacs",
    "FactorGraph", "SPConfig", "SPResult", "run_sp", "solve_sp",
    "survey_iteration", "walksat", "dpll", "DPLLBudgetExceeded",
]
