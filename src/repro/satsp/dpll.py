"""A complete DPLL SAT solver: the verification oracle for SP/WalkSAT.

Survey propagation is incomplete (it can answer UNKNOWN and can fix
variables inconsistently); WalkSAT is incomplete too.  For small
instances this solver gives ground truth: unit propagation, pure-literal
elimination, and branching on the most-occurring variable, with
conflict-driven backtracking (chronological — this is an oracle, not a
competition solver).

Intended for formulas up to a few hundred variables; the test suite uses
it to check that (a) WalkSAT never reports SAT on unsatisfiable
formulas, (b) SP decimation prefixes remain extendable on satisfiable
ones, and (c) the random generator's satisfiability rate behaves as the
phase-transition literature predicts.
"""

from __future__ import annotations

import numpy as np

from .formula import CNF

__all__ = ["dpll", "DPLLBudgetExceeded"]


class DPLLBudgetExceeded(RuntimeError):
    """Raised when the search exceeds its decision budget."""


def dpll(cnf: CNF, max_decisions: int = 1_000_000) -> np.ndarray | None:
    """Return a satisfying assignment, or None if unsatisfiable.

    Raises :class:`DPLLBudgetExceeded` if the search would exceed
    ``max_decisions`` branching decisions.
    """
    n = cnf.num_vars
    # clauses as lists of signed literals: +v+1 / -(v+1)
    clauses = []
    for row_v, row_s in zip(cnf.vars, cnf.signs):
        lits = []
        for v, s in zip(row_v.tolist(), row_s.tolist()):
            lit = (v + 1) * (1 if s > 0 else -1)
            if -lit in lits:
                lits = None  # tautological clause
                break
            if lit not in lits:
                lits.append(lit)
        if lits is not None:
            clauses.append(lits)

    assign: dict[int, bool] = {}
    budget = [max_decisions]

    def value(lit: int) -> bool | None:
        v = abs(lit) - 1
        if v not in assign:
            return None
        val = assign[v]
        return val if lit > 0 else not val

    def simplify() -> tuple[list, bool]:
        """Current clause state: (unresolved clauses, conflict?)."""
        out = []
        for c in clauses:
            sat = False
            free = []
            for lit in c:
                val = value(lit)
                if val is True:
                    sat = True
                    break
                if val is None:
                    free.append(lit)
            if sat:
                continue
            if not free:
                return [], True
            out.append(free)
        return out, False

    def propagate() -> bool:
        """Unit propagation + pure literals; False on conflict."""
        while True:
            remaining, conflict = simplify()
            if conflict:
                return False
            units = [c[0] for c in remaining if len(c) == 1]
            if units:
                for lit in units:
                    val = value(lit)
                    if val is False:
                        return False
                    assign[abs(lit) - 1] = lit > 0
                continue
            # pure literals
            polarity: dict[int, int] = {}
            for c in remaining:
                for lit in c:
                    polarity[abs(lit)] = polarity.get(abs(lit), 0) | \
                        (1 if lit > 0 else 2)
            pures = [v for v, p in polarity.items() if p != 3]
            if pures:
                for v in pures:
                    assign[v - 1] = polarity[v] == 1
                continue
            return True

    def search() -> bool:
        if not propagate():
            return False
        remaining, conflict = simplify()
        if conflict:
            return False
        if not remaining:
            return True
        if budget[0] <= 0:
            raise DPLLBudgetExceeded("dpll decision budget exhausted")
        budget[0] -= 1
        # branch on the most frequent variable in the residual
        counts: dict[int, int] = {}
        for c in remaining:
            for lit in c:
                counts[abs(lit) - 1] = counts.get(abs(lit) - 1, 0) + 1
        v = max(counts, key=counts.get)
        snapshot = dict(assign)
        for val in (True, False):
            assign.clear()
            assign.update(snapshot)
            assign[v] = val
            if search():
                return True
        assign.clear()
        assign.update(snapshot)
        return False

    if search():
        out = np.zeros(n, dtype=bool)
        for v, val in assign.items():
            out[v] = val
        # unassigned variables are don't-cares; any value works
        assert cnf.check(out)
        return out
    return None
