"""WalkSAT: the "simpler solver" SP hands the residual formula to.

Standard SKC WalkSAT: pick an unsatisfied clause at random; if some
variable in it breaks nothing, flip it (freebie); otherwise with
probability ``noise`` flip a random variable of the clause, else flip
the one with the fewest breaks.  ``break(v)`` is the number of clauses
that flipping ``v`` would newly unsatisfy — exactly the clauses where
``v``'s literal is currently the *only* true one.

The implementation keeps per-clause true-literal counts and per-flip
O(degree) updates, the classic incremental bookkeeping.
"""

from __future__ import annotations

import numpy as np

from ..core.counters import OpCounter
from .formula import CNF

__all__ = ["walksat"]


def walksat(cnf: CNF, max_flips: int = 1_000_000, noise: float = 0.5,
            seed: int = 0, restarts: int = 5,
            counter: OpCounter | None = None) -> np.ndarray | None:
    """Return a satisfying boolean assignment, or None on failure."""
    if cnf.num_clauses == 0:
        return np.zeros(cnf.num_vars, dtype=bool)
    rng = np.random.default_rng(seed)
    m, k = cnf.num_clauses, cnf.k
    n = cnf.num_vars
    # Variable -> (clause, sign) occurrence CSR.
    flat_v = cnf.vars.ravel()
    flat_s = cnf.signs.ravel()
    order = np.argsort(flat_v, kind="stable")
    occ_clause = (np.arange(flat_v.size) // k)[order]
    occ_sign = flat_s[order]
    starts = np.searchsorted(flat_v[order], np.arange(n + 1))
    flips_done = 0

    def lit_true(v: int, s: int, assign: np.ndarray) -> bool:
        return bool(assign[v]) == (s > 0)

    for _ in range(restarts):
        assign = rng.random(n) < 0.5
        truth = np.where(cnf.signs > 0, assign[cnf.vars], ~assign[cnf.vars])
        num_true = truth.sum(axis=1).astype(np.int64)
        unsat_list = np.flatnonzero(num_true == 0).tolist()
        unsat_pos = {c: i for i, c in enumerate(unsat_list)}

        def breaks(v: int) -> int:
            b = 0
            for j in range(starts[v], starts[v + 1]):
                c = int(occ_clause[j])
                if num_true[c] == 1 and lit_true(v, int(occ_sign[j]), assign):
                    b += 1
            return b

        def flip(v: int) -> None:
            assign[v] = not assign[v]
            for j in range(starts[v], starts[v + 1]):
                c = int(occ_clause[j])
                if lit_true(v, int(occ_sign[j]), assign):
                    num_true[c] += 1
                    if num_true[c] == 1:  # clause became satisfied
                        i = unsat_pos.pop(c)
                        last = unsat_list.pop()
                        if last != c:
                            unsat_list[i] = last
                            unsat_pos[last] = i
                else:
                    num_true[c] -= 1
                    if num_true[c] == 0:  # clause became unsatisfied
                        unsat_pos[c] = len(unsat_list)
                        unsat_list.append(c)

        for _ in range(max_flips):
            if not unsat_list:
                if counter is not None:
                    counter.launch("walksat", items=flips_done)
                return assign
            flips_done += 1
            c = unsat_list[int(rng.integers(len(unsat_list)))]
            cvars = [int(x) for x in cnf.vars[c]]
            bs = [breaks(v) for v in cvars]
            zero = [v for v, b in zip(cvars, bs) if b == 0]
            if zero:
                v = zero[0]                       # freebie
            elif rng.random() < noise:
                v = cvars[int(rng.integers(k))]   # noise step
            else:
                v = cvars[int(np.argmin(bs))]     # greedy step
            flip(v)
    if counter is not None:
        counter.launch("walksat", items=flips_done)
    return None
