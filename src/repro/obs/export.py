"""Exporters: Chrome ``trace_event`` JSON, flat metrics, BENCH trajectories.

Three consumers, three formats:

* :func:`chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` and Perfetto.  Spans become complete ("X")
  events, gauges become counter ("C") events, and one metadata ("M")
  event names the virtual process.
* :func:`metrics_dict` — a flat ``{str: float}`` dict for assertions and
  quick printing (delegates to :meth:`Tracer.metrics`).
* :func:`write_bench` / :func:`read_bench` — the ``BENCH_<figure>.json``
  perf-trajectory files at the repository top level, appended to by
  ``benchmarks/harness.py`` so successive PRs build a history.
"""

from __future__ import annotations

import json
from pathlib import Path

from .tracer import Tracer

__all__ = ["chrome_trace", "write_chrome_trace", "metrics_dict",
           "write_bench", "read_bench", "BENCH_SCHEMA"]

#: Schema tag stamped into every BENCH file (bump on format changes).
BENCH_SCHEMA = "repro.bench/1"

#: pid/tid for the single virtual device the trace describes.
_PID = 1
_TID = 1


def chrome_trace(tracer: Tracer) -> dict:
    """Serialize ``tracer`` to a Chrome trace_event JSON object."""
    events: list[dict] = [
        {"ph": "M", "pid": _PID, "tid": _TID, "ts": 0,
         "name": "process_name", "args": {"name": "vGPU (modeled)"}},
        {"ph": "M", "pid": _PID, "tid": _TID, "ts": 0,
         "name": "thread_name", "args": {"name": "launch timeline"}},
    ]
    for span in tracer.closed_events():
        events.append({
            "ph": "X", "pid": _PID, "tid": _TID,
            "name": span.name, "cat": span.cat,
            "ts": span.ts, "dur": span.dur if span.dur is not None else 0.0,
            "args": span.args,
        })
    for name, samples in sorted(tracer.gauges.items()):
        for ts, value in samples:
            events.append({
                "ph": "C", "pid": _PID, "tid": _TID,
                "name": name, "cat": "gauge",
                "ts": ts, "args": {"value": value},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms",
            "otherData": {"modeled_us": tracer.now_us,
                          "spec": tracer.spec.name}}


def write_chrome_trace(path: str | Path, tracer: Tracer) -> Path:
    """Write :func:`chrome_trace` output as JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer), indent=1) + "\n")
    return path


def metrics_dict(tracer: Tracer) -> dict[str, float]:
    """Flat metrics for assertions; see :meth:`Tracer.metrics`."""
    return tracer.metrics()


# ---------------------------------------------------------------------- #
# BENCH_<figure>.json trajectory files                                   #
# ---------------------------------------------------------------------- #

def write_bench(path: str | Path, figure: str, runs: list[dict], *,
                append: bool = False, dedupe: bool = False) -> Path:
    """Write (or extend) a ``BENCH_<figure>.json`` trajectory file.

    Each element of ``runs`` is one measurement row — a flat JSON-able
    dict, typically ``{"input": ..., "modeled_gpu_s": ...}``.  With
    ``append=True`` an existing file's runs are kept and the new ones
    added after them, so the file accumulates a history across commits.

    With ``dedupe=True`` (append mode only), prior rows that share a
    ``(scale, seed, config)`` key with any new row are dropped first:
    re-running the suite at an already-recorded configuration *replaces*
    that configuration's batch instead of appending duplicate rows
    forever — the trajectory stays one batch per measured configuration.
    ``config`` participates so that several bench scripts can append
    distinct row families to one figure file (e.g. ``BENCH_serve.json``
    carries ``pool``/``streams`` rows from the throughput bench and
    ``gateway`` rows from the load bench) without clobbering each other.
    """
    path = Path(path)
    existing: list[dict] = []
    if append and path.exists():
        try:
            prior = json.loads(path.read_text())
            if prior.get("figure") == figure:
                existing = list(prior.get("runs", []))
        except (json.JSONDecodeError, AttributeError):
            existing = []
    if dedupe and existing:
        def key(r: dict) -> tuple:
            return (r.get("scale"), r.get("seed"), r.get("config"))
        new_keys = {key(r) for r in runs}
        existing = [r for r in existing if key(r) not in new_keys]
    doc = {"schema": BENCH_SCHEMA, "figure": figure,
           "runs": existing + list(runs)}
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


def read_bench(path: str | Path) -> dict:
    """Load a BENCH file, validating its schema tag."""
    doc = json.loads(Path(path).read_text())
    if doc.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unknown bench schema {doc.get('schema')!r}")
    return doc
