"""The concrete :class:`Tracer`: spans, launch pricing, and gauges.

A :class:`Tracer` implements the :class:`repro.vgpu.instrument.TracerHooks`
interface and builds a timeline of :class:`SpanEvent` records on a
*virtual* microsecond clock.  Because nothing here executes on real
hardware, wall-clock time is meaningless; instead the clock advances only
when a priced launch event arrives, by the cost-model duration of that
launch.  The resulting trace therefore shows *modeled* time — the same
quantity the Fig. 6–11 benchmarks report — broken down per launch and per
conflict-resolution phase.

Pricing replicates the per-kernel body of
:meth:`repro.vgpu.costmodel.CostModel.gpu_time` directly rather than
building a throwaway :class:`~repro.core.counters.OpCounter` and pricing
it, because ``OpCounter.launch`` is itself a tracer hook site — going
through it from inside the tracer would recurse.

Determinism: a tracer never mutates device or algorithm state and never
draws from an RNG, so a traced run is byte-identical to an untraced one
(``tests/test_seed_stability.py`` enforces this).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..vgpu.costmodel import GPU_ATOMIC_UNITS, GPU_CYCLES_PER_STEP
from ..vgpu.device import GpuSpec, TESLA_C2070
from ..vgpu.instrument import TracerHooks, activate_tracer
from ..vgpu.sync import BarrierModel, HIERARCHICAL

__all__ = ["SpanEvent", "Tracer"]


@dataclass
class SpanEvent:
    """One closed interval or instantaneous sample on the trace timeline.

    ``ts`` and ``dur`` are virtual microseconds.  ``dur`` is ``None``
    while a span is still open (the exporter synthesizes a duration for
    spans left open at export time).
    """

    name: str
    cat: str
    ts: float
    dur: float | None = None
    args: dict = field(default_factory=dict)


class Tracer(TracerHooks):
    """Record hierarchical spans and gauges for one (or more) driver runs.

    Parameters
    ----------
    spec:
        GPU whose cost table prices the launches (default Tesla C2070,
        the paper's card).
    barrier:
        Barrier scheme used for pricing barrier crossings when the
        kernel did not override it.
    blocks / threads_per_block:
        Default launch geometry for barrier pricing; drivers that adapt
        their geometry report it via :meth:`on_geometry` and override
        these.
    """

    def __init__(self, spec: GpuSpec = TESLA_C2070, *,
                 barrier: BarrierModel = HIERARCHICAL,
                 blocks: int | None = None,
                 threads_per_block: int = 256) -> None:
        self.spec = spec
        self.barrier = barrier
        self.blocks = blocks if blocks is not None else spec.num_sms * 8
        self.threads_per_block = threads_per_block
        #: closed events, in completion order (exporter sorts by ts)
        self.events: list[SpanEvent] = []
        #: open spans, outermost first
        self.stack: list[SpanEvent] = []
        #: gauge name -> list of (ts, value) samples
        self.gauges: dict[str, list[tuple[float, float]]] = {}
        #: per-launch-name accumulated (count, priced µs)
        self.launch_totals: dict[str, list] = {}
        self._now = 0.0

    # ------------------------------------------------------------------ #
    # clock & pricing                                                    #
    # ------------------------------------------------------------------ #
    @property
    def now_us(self) -> float:
        """Current position of the virtual clock, in microseconds."""
        return self._now

    def _price_us(self, *, items: int, word_reads: int, word_writes: int,
                  atomics: int, barriers: int, launches: int,
                  issued_lane_steps: int, critical_lane_steps: int) -> float:
        """Modeled GPU microseconds for one launch's counts.

        Mirrors the per-kernel body of ``CostModel.gpu_time`` (same
        constants, same max-of-compute-and-memory overlap rule).
        """
        spec = self.spec
        if issued_lane_steps == 0 and items:
            issued_lane_steps = items
            critical_lane_steps = critical_lane_steps or 1
        cycles = launches * spec.kernel_launch_cycles
        throughput = issued_lane_steps * GPU_CYCLES_PER_STEP / spec.total_cores
        critical = critical_lane_steps * GPU_CYCLES_PER_STEP
        compute = max(throughput, critical)
        mem = (word_reads + word_writes) / spec.words_per_clock
        cycles += max(compute, mem)
        cycles += atomics * spec.atomic_cycles / (
            GPU_ATOMIC_UNITS * spec.cores_per_sm)
        cycles += barriers * self.barrier.cycles(
            spec, self.blocks, self.threads_per_block)
        return cycles / spec.clock_hz * 1e6

    # ------------------------------------------------------------------ #
    # TracerHooks implementation                                         #
    # ------------------------------------------------------------------ #
    def on_span_begin(self, name: str, cat: str = "span", **args) -> None:
        self.stack.append(SpanEvent(name, cat, self._now, None, dict(args)))

    def on_span_end(self, **args) -> None:
        if not self.stack:
            return
        span = self.stack.pop()
        span.dur = self._now - span.ts
        if args:
            span.args.update(args)
        self.events.append(span)

    def on_launch(self, name: str, *, cat: str = "kernel.launch",
                  items: int = 0, aborted: int = 0, word_reads: int = 0,
                  word_writes: int = 0, atomics: int = 0, barriers: int = 0,
                  launches: int = 1, issued_lane_steps: int = 0,
                  critical_lane_steps: int = 0) -> None:
        dur = self._price_us(
            items=items, word_reads=word_reads, word_writes=word_writes,
            atomics=atomics, barriers=barriers, launches=launches,
            issued_lane_steps=issued_lane_steps,
            critical_lane_steps=critical_lane_steps)
        self.events.append(SpanEvent(
            name, cat, self._now, dur,
            {"items": items, "aborted": aborted,
             "word_reads": word_reads, "word_writes": word_writes,
             "atomics": atomics, "barriers": barriers,
             "launches": launches}))
        tot = self.launch_totals.setdefault(name, [0, 0.0, 0, 0])
        tot[0] += launches
        tot[1] += dur
        tot[2] += items
        tot[3] += aborted
        self._now += dur

    def on_gauge(self, name: str, value: float) -> None:
        self.gauges.setdefault(name, []).append((self._now, float(value)))

    def on_geometry(self, blocks: int, threads_per_block: int) -> None:
        self.blocks = int(blocks)
        self.threads_per_block = int(threads_per_block)
        self.on_gauge("launch.blocks", blocks)
        self.on_gauge("launch.tpb", threads_per_block)

    # ------------------------------------------------------------------ #
    # user-facing conveniences                                           #
    # ------------------------------------------------------------------ #
    @contextmanager
    def activate(self):
        """Install this tracer for a ``with`` block (manual wiring)."""
        with activate_tracer(self):
            yield self

    @contextmanager
    def span(self, name: str, cat: str = "span", **args):
        """Open a span directly on this tracer (no activation needed)."""
        self.on_span_begin(name, cat=cat, **args)
        try:
            yield self
        finally:
            self.on_span_end()

    def closed_events(self) -> list[SpanEvent]:
        """All events, with still-open spans synthesized up to *now*."""
        out = list(self.events)
        for span in self.stack:
            out.append(SpanEvent(span.name, span.cat, span.ts,
                                 self._now - span.ts, dict(span.args)))
        out.sort(key=lambda e: (e.ts, -(e.dur or 0.0)))
        return out

    def metrics(self) -> dict[str, float]:
        """Flatten the trace into a metrics dict (stable key order).

        Keys::

            modeled_us                    total virtual time
            span.count                    number of closed spans
            launch.<name>.count           dispatches per kernel
            launch.<name>.us              priced time per kernel
            launch.<name>.items           work items per kernel
            launch.<name>.aborted         aborted items per kernel
            gauge.<name>.last/.max/.n     final / peak / sample count
        """
        out: dict[str, float] = {"modeled_us": self._now}
        out["span.count"] = float(sum(
            1 for e in self.events if e.cat not in
            ("kernel.launch", "conflict.phase")))
        for name in sorted(self.launch_totals):
            count, us, items, aborted = self.launch_totals[name]
            out[f"launch.{name}.count"] = float(count)
            out[f"launch.{name}.us"] = us
            out[f"launch.{name}.items"] = float(items)
            out[f"launch.{name}.aborted"] = float(aborted)
        for name in sorted(self.gauges):
            samples = self.gauges[name]
            out[f"gauge.{name}.last"] = samples[-1][1]
            out[f"gauge.{name}.max"] = max(v for _, v in samples)
            out[f"gauge.{name}.n"] = float(len(samples))
        return out
