"""repro.obs — launch-level tracing & metrics for the virtual GPU.

The paper's evaluation (§8, Figs. 6–11) is about *where modeled time
goes*: kernel launches, conflict-resolution phases, barrier crossings,
worklist occupancy.  This package records that structure as a span
timeline on a virtual clock and exports it three ways:

* Chrome ``trace_event`` JSON (:func:`chrome_trace`) for
  ``chrome://tracing`` / Perfetto,
* a flat metrics dict (:meth:`Tracer.metrics`) for assertions,
* ``BENCH_<figure>.json`` trajectories (:func:`write_bench`) appended by
  the benchmark harness.

Usage mirrors the sanitizer::

    from repro.obs import Tracer, write_chrome_trace

    tr = Tracer()
    refine_gpu(mesh, tracer=tr)          # every driver takes tracer=
    write_chrome_trace("trace.json", tr)
    print(tr.metrics()["modeled_us"])

See ``docs/OBSERVABILITY.md`` for the span hierarchy and how to read a
trace against the paper's Fig. 6/8 phase breakdowns.
"""

from .export import (BENCH_SCHEMA, chrome_trace, metrics_dict, read_bench,
                     write_bench, write_chrome_trace)
from .schema import TraceSchemaError, validate_chrome_trace
from .tracer import SpanEvent, Tracer

__all__ = [
    "Tracer", "SpanEvent",
    "chrome_trace", "write_chrome_trace", "metrics_dict",
    "write_bench", "read_bench", "BENCH_SCHEMA",
    "validate_chrome_trace", "TraceSchemaError",
]
