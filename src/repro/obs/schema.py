"""Structural validation for exported Chrome trace_event JSON.

The CI trace-smoke step and ``tests/test_obs.py`` run every exported
trace through :func:`validate_chrome_trace` before trusting it; a trace
that fails here would render wrong (or not at all) in
``chrome://tracing`` / Perfetto.

Checks:

* top-level shape: ``traceEvents`` is a list of dicts;
* per-event required keys and types by phase (``ph``): complete events
  ("X") need numeric non-negative ``ts``/``dur``; counters ("C") need a
  numeric ``args`` payload; metadata ("M") needs a ``name``;
* "X" events on one pid/tid nest properly: sorted by start (ties broken
  longest-first), every event fits inside the enclosing open event, with
  a small epsilon for float accumulation.
"""

from __future__ import annotations

import numbers

__all__ = ["TraceSchemaError", "validate_chrome_trace"]

#: Slack (virtual µs) allowed for float round-off when checking nesting.
_EPS = 1e-6

_KNOWN_PHASES = {"X", "C", "M", "B", "E", "i"}


class TraceSchemaError(ValueError):
    """An exported trace violates the trace_event structural rules."""


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise TraceSchemaError(msg)


def _is_num(x) -> bool:
    return isinstance(x, numbers.Real) and not isinstance(x, bool)


def validate_chrome_trace(doc: dict) -> int:
    """Validate a Chrome-trace JSON object; returns the event count.

    Raises :class:`TraceSchemaError` (a ``ValueError``) on the first
    violation found.
    """
    _require(isinstance(doc, dict), "trace document must be a JSON object")
    events = doc.get("traceEvents")
    _require(isinstance(events, list), "traceEvents must be a list")

    complete: dict[tuple, list[tuple[float, float, str]]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        _require(isinstance(ev, dict), f"{where}: event must be an object")
        ph = ev.get("ph")
        _require(ph in _KNOWN_PHASES,
                 f"{where}: unknown or missing phase {ph!r}")
        _require(isinstance(ev.get("name"), str) and ev["name"],
                 f"{where}: missing event name")
        _require("pid" in ev and "tid" in ev,
                 f"{where}: missing pid/tid")
        if ph == "M":
            continue
        ts = ev.get("ts")
        _require(_is_num(ts) and ts >= 0,
                 f"{where}: ts must be a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            _require(_is_num(dur) and dur >= 0,
                     f"{where}: dur must be a non-negative number")
            args = ev.get("args", {})
            _require(isinstance(args, dict), f"{where}: args must be a dict")
            complete.setdefault((ev["pid"], ev["tid"]), []).append(
                (float(ts), float(dur), ev["name"]))
        elif ph == "C":
            args = ev.get("args")
            _require(isinstance(args, dict) and args,
                     f"{where}: counter event needs a non-empty args dict")
            for key, val in args.items():
                _require(_is_num(val),
                         f"{where}: counter series {key!r} must be numeric")

    # Nesting: within one thread lane, complete events must form a
    # properly bracketed hierarchy (this is what makes the flame view
    # readable rather than overlapping garbage).
    for lane, evs in complete.items():
        evs.sort(key=lambda e: (e[0], -e[1]))
        stack: list[tuple[float, float, str]] = []
        for ts, dur, name in evs:
            while stack and ts >= stack[-1][0] + stack[-1][1] - _EPS:
                stack.pop()
            if stack:
                p_ts, p_dur, p_name = stack[-1]
                _require(ts + dur <= p_ts + p_dur + _EPS,
                         f"event {name!r} at ts={ts} overflows enclosing "
                         f"span {p_name!r} on lane {lane}")
            stack.append((ts, dur, name))
    return len(events)
