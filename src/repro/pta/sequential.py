"""Serial worklist Andersen analysis (Fig. 10's "Serial" column).

The classic sequential formulation: a worklist of nodes with changed
points-to sets; popping a node propagates its *difference* along
outgoing copy edges and fires the load/store constraints indexed on it.
Difference propagation keeps serial work proportional to new facts,
which is what a tuned serial analysis does (the paper's serial numbers
come from such a baseline).

Uses Python sets per node — the natural sparse-set representation a
serial implementation would pick — and records per-fact work so the
cost model prices it on one Xeon core.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.counters import OpCounter
from .constraints import Constraints, Kind

__all__ = ["SerialPTAResult", "andersen_serial"]


@dataclass
class SerialPTAResult:
    pts: list            # list[frozenset] per variable
    counter: OpCounter
    pops: int
    edges_added: int

    def points_to(self, var: int) -> np.ndarray:
        return np.asarray(sorted(self.pts[var]), dtype=np.int64)

    def total_facts(self) -> int:
        return sum(len(s) for s in self.pts)


def andersen_serial(cons: Constraints,
                    counter: OpCounter | None = None) -> SerialPTAResult:
    n = cons.num_vars
    ctr = counter or OpCounter()
    pts: list[set] = [set() for _ in range(n)]
    succ: list[set] = [set() for _ in range(n)]      # copy edges u -> v
    loads = defaultdict(list)    # q -> [p]  for p = *q
    stores = defaultdict(list)   # p -> [q]  for *p = q

    p_addr, q_addr = cons.of_kind(Kind.ADDRESS_OF)
    for p, q in zip(p_addr.tolist(), q_addr.tolist()):
        pts[p].add(q)
    p_copy, q_copy = cons.of_kind(Kind.COPY)
    edges = 0
    for p, q in zip(p_copy.tolist(), q_copy.tolist()):
        if p not in succ[q]:
            succ[q].add(p)
            edges += 1
    p_load, q_load = cons.of_kind(Kind.LOAD)
    for p, q in zip(p_load.tolist(), q_load.tolist()):
        loads[q].append(p)
    p_store, q_store = cons.of_kind(Kind.STORE)
    for p, q in zip(p_store.tolist(), q_store.tolist()):
        stores[p].append(q)

    worklist = [v for v in range(n) if pts[v]]
    pending = set(worklist)
    pops = 0
    work_units = 0
    words = 0

    def add_edge(u: int, v: int) -> None:
        nonlocal edges, words
        if v not in succ[u]:
            succ[u].add(v)
            edges += 1
            words += 2
            if pts[u] and u not in pending:
                worklist.append(u)
                pending.add(u)

    while worklist:
        v = worklist.pop()
        pending.discard(v)
        pops += 1
        dirty = pts[v]
        work_units += 1 + len(dirty)
        # Fire load/store constraints indexed on v.
        for p in loads.get(v, ()):
            for o in list(dirty):
                add_edge(o, p)
        for q in stores.get(v, ()):
            for o in list(dirty):
                add_edge(q, o)
        # Propagate along copy edges.
        for s in list(succ[v]):
            before = len(pts[s])
            pts[s] |= dirty
            delta = len(pts[s]) - before
            words += len(dirty) // 8 + 1
            work_units += 1 + delta
            if delta and s not in pending:
                worklist.append(s)
                pending.add(s)
    ctr.launch("pta.serial", items=pops, word_reads=words,
               word_writes=words // 2,
               work_per_thread=np.asarray([work_units]))
    return SerialPTAResult(pts=[frozenset(s) for s in pts], counter=ctr,
                           pops=pops, edges_added=edges)
