"""Bit-matrix points-to sets.

Points-to sets are dense bit vectors over the variable universe — the
representation GPU points-to analyses use ([18]) — stored as one
``(num_vars, words)`` uint64 matrix so whole-set operations (union,
difference, population count) are single vectorized passes.
"""

from __future__ import annotations

import numpy as np

from ..vgpu.atomics import atomic_or

__all__ = ["BitMatrix"]


class BitMatrix:
    """``num_sets`` bit sets over a ``universe``-sized domain."""

    def __init__(self, num_sets: int, universe: int) -> None:
        self.universe = universe
        self.words = max(1, -(-universe // 64))
        self.bits = np.zeros((num_sets, self.words), dtype=np.uint64)

    # ------------------------------------------------------------------ #
    def add(self, set_ids, members) -> None:
        """Insert ``members[i]`` into set ``set_ids[i]`` (vectorized)."""
        set_ids = np.asarray(set_ids, dtype=np.int64)
        members = np.asarray(members, dtype=np.int64)
        w = members >> 6
        b = np.uint64(1) << (members & 63).astype(np.uint64)
        # atomicOr, as on the device: duplicate (set, word) pairs are
        # commutative and the sanitizer sees the access batch.
        atomic_or(self.bits, (set_ids, w), b)

    def contains(self, set_id: int, member: int) -> bool:
        w, b = member >> 6, np.uint64(1) << np.uint64(member & 63)
        return bool(self.bits[set_id, w] & b)

    def members(self, set_id: int) -> np.ndarray:
        """Sorted member ids of one set."""
        row = self.bits[set_id]
        out = []
        for w in np.flatnonzero(row):
            word = int(row[w])
            base = int(w) << 6
            while word:
                low = word & -word
                out.append(base + low.bit_length() - 1)
                word ^= low
        return np.asarray(out, dtype=np.int64)

    def union_into(self, dst: int, srcs: np.ndarray) -> bool:
        """``bits[dst] |= OR of bits[srcs]``; True if dst changed."""
        if len(srcs) == 0:
            return False
        acc = np.bitwise_or.reduce(self.bits[srcs], axis=0)
        new = self.bits[dst] | acc
        changed = bool(np.any(new != self.bits[dst]))
        self.bits[dst] = new
        return changed

    def counts(self) -> np.ndarray:
        """Population count per set."""
        return np.bitwise_count(self.bits).sum(axis=1).astype(np.int64)

    def copy(self) -> "BitMatrix":
        out = BitMatrix.__new__(BitMatrix)
        out.universe = self.universe
        out.words = self.words
        out.bits = self.bits.copy()
        return out

    def equal(self, other: "BitMatrix") -> bool:
        return bool(np.array_equal(self.bits, other.bits))
