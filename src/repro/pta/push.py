"""Push-based Andersen variant (the Section 6.4 comparison).

"In a push-based approach, multiple threads may simultaneously
propagate information to the same node and, in general, need to use
synchronization."

Same two-phase structure as the pull analysis, but propagation walks
*outgoing* edges: every node whose set changed ORs itself into each
successor — and because several sources can target one destination
concurrently, every destination word update is an atomic RMW.  The
fixed point is identical (asserted by tests); only the cost profile
differs, which is the point of the push-vs-pull ablation and the model
for the multicore (Galois) baseline in Fig. 10.
"""

from __future__ import annotations

import numpy as np

from ..core.counters import OpCounter
from ..resilience.addition import FallbackStorage
from ..resilience.policy import launch_ok, maybe_activate_resilience
from .andersen import PTAResult
from .bitset import BitMatrix
from .constraints import Constraints, Kind
from .graph import PushGraph

__all__ = ["andersen_push"]


def andersen_push(cons: Constraints, *, chunk_size: int = 1024,
                  counter: OpCounter | None = None,
                  max_rounds: int = 10_000,
                  resilience=None) -> PTAResult:
    """Push-based inclusion analysis; same fixed point as the pull one.

    ``resilience`` (opt-in) mirrors :func:`~repro.pta.andersen.\
andersen_pull`: §7.1 fallback-chain edge storage plus round re-issue
    on transient injected kernel aborts.
    """
    with maybe_activate_resilience(resilience):
        return _push_impl(cons, chunk_size, counter, max_rounds, resilience)


def _push_impl(cons: Constraints, chunk_size: int,
               counter: OpCounter | None, max_rounds: int,
               resil=None) -> PTAResult:
    n = cons.num_vars
    ctr = counter or OpCounter()
    pts = BitMatrix(n, n)
    W = pts.words
    storage = (FallbackStorage(n, chunk_size, resilience=resil)
               if resil is not None else None)
    graph = PushGraph(n, chunk_size, storage=storage)

    p_addr, q_addr = cons.of_kind(Kind.ADDRESS_OF)
    pts.add(p_addr, q_addr)
    ctr.launch("pta.init", items=int(p_addr.size),
               word_writes=int(p_addr.size), barriers=1)

    p_copy, q_copy = cons.of_kind(Kind.COPY)
    edges_added = graph.add_edges(q_copy, p_copy)
    ctr.launch("pta.addedge", items=int(p_copy.size),
               word_writes=2 * int(p_copy.size), barriers=1)

    p_load, q_load = cons.of_kind(Kind.LOAD)
    p_store, q_store = cons.of_kind(Kind.STORE)

    changed = np.ones(n, dtype=bool)
    rounds = sweeps = 0
    while rounds < max_rounds:
        if not launch_ok(resil, "pta.round"):
            continue    # absorbed transient abort: re-issue the round
        rounds += 1
        # ---- Phase 1: edge addition (identical to the pull variant) -- #
        new_src: list[np.ndarray] = []
        new_dst: list[np.ndarray] = []
        reads = 0
        for p, q in zip(p_load.tolist(), q_load.tolist()):
            if not changed[q] and rounds > 1:
                continue
            vs = pts.members(q)
            reads += W + vs.size
            if vs.size:
                new_src.append(vs)
                new_dst.append(np.full(vs.size, p, dtype=np.int64))
        for p, q in zip(p_store.tolist(), q_store.tolist()):
            if not changed[p] and rounds > 1:
                continue
            vs = pts.members(p)
            reads += W + vs.size
            if vs.size:
                new_src.append(np.full(vs.size, q, dtype=np.int64))
                new_dst.append(vs)
        added = 0
        if new_src:
            added = graph.add_edges(np.concatenate(new_src),
                                    np.concatenate(new_dst))
        edges_added += added
        ctr.launch("pta.addedge", items=p_load.size + p_store.size,
                   word_reads=reads, word_writes=2 * added, barriers=1)

        # ---- Phase 2: push sweep ------------------------------------ #
        # Sources: changed nodes (all nodes on the first sweep or after
        # edge additions, mirroring the pull variant's conservatism).
        if added > 0 or rounds == 1:
            srcs = np.flatnonzero(graph.degrees() > 0)
        else:
            srcs = np.flatnonzero(changed)
        new_changed = np.zeros(n, dtype=bool)
        reads = writes = atomics = 0
        work = []
        for s in srcs.tolist():
            out = graph.outgoing(s)
            work.append(1 + out.size)
            if out.size == 0:
                continue
            reads += W
            for d in out.tolist():
                # Destination update: atomicOr per word (contended).
                before = pts.bits[d].copy()
                pts.bits[d] |= pts.bits[s]
                atomics += W
                writes += W
                if np.any(pts.bits[d] != before):
                    new_changed[d] = True
        sweeps += 1
        ctr.launch("pta.propagate", items=int(srcs.size), word_reads=reads,
                   word_writes=writes, atomics=atomics, barriers=1,
                   work_per_thread=np.asarray(work, dtype=np.int64)
                   if work else np.zeros(1, dtype=np.int64))
        changed = new_changed
        if not changed.any() and added == 0:
            break
    return PTAResult(pts=pts, counter=ctr, rounds=rounds,
                     edges_added=edges_added, propagation_sweeps=sweeps)
