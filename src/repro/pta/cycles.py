"""Offline cycle elimination for points-to analysis.

The paper notes its CPU baselines "perform optimizations like online
cycle elimination and topological sort that are not included in our GPU
code" (Section 8.3).  This module provides the *offline* form as an
optional preprocessing pass: strongly connected components of the
copy-edge graph provably share one points-to set, so collapsing each
SCC to a representative shrinks the constraint graph before the
fixed-point iteration.

Tarjan's algorithm (iterative — Python recursion limits) finds the
SCCs; :func:`collapse_cycles` rewrites a :class:`Constraints` instance
onto representatives and returns the mapping so callers can expand the
solution back to all original variables.
"""

from __future__ import annotations

import numpy as np

from .constraints import Constraints, Kind

__all__ = ["copy_sccs", "collapse_cycles", "expand_solution"]


def copy_sccs(cons: Constraints) -> np.ndarray:
    """SCC id per variable over the static copy-edge graph.

    Edges: ``q -> p`` for every COPY constraint ``p = q``.  Returns an
    array mapping each variable to its SCC representative (the smallest
    member id, for determinism).
    """
    n = cons.num_vars
    p, q = cons.of_kind(Kind.COPY)
    order = np.argsort(q, kind="stable")
    succ_dst = p[order]
    starts = np.searchsorted(q[order], np.arange(n + 1))

    index = np.full(n, -1, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    scc = np.arange(n, dtype=np.int64)
    counter = [0]

    for root in range(n):
        if index[root] >= 0:
            continue
        # iterative Tarjan: (node, next-child-pointer) frames
        frames = [(root, int(starts[root]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while frames:
            v, ptr = frames[-1]
            if ptr < starts[v + 1]:
                frames[-1] = (v, ptr + 1)
                w = int(succ_dst[ptr])
                if index[w] < 0:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack[w] = True
                    frames.append((w, int(starts[w])))
                elif on_stack[w]:
                    low[v] = min(low[v], index[w])
            else:
                frames.pop()
                if frames:
                    u = frames[-1][0]
                    low[u] = min(low[u], low[v])
                if low[v] == index[v]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        comp.append(w)
                        if w == v:
                            break
                    rep = min(comp)
                    for w in comp:
                        scc[w] = rep
    return scc


def collapse_cycles(cons: Constraints) -> tuple[Constraints, np.ndarray, int]:
    """Rewrite constraints onto SCC representatives.

    Returns ``(collapsed, rep, num_collapsed)`` where ``rep[v]`` is v's
    representative and ``num_collapsed`` counts variables merged away.
    Only pointer *roles* are rewritten; address-of targets (the objects)
    keep their identity so the points-to universe is unchanged.
    Self-copies created by the collapse are dropped.
    """
    rep = copy_sccs(cons)
    lhs = rep[cons.lhs]
    rhs = cons.rhs.copy()
    not_addr = cons.kind != int(Kind.ADDRESS_OF)
    rhs[not_addr] = rep[rhs[not_addr]]
    keep = ~((cons.kind == int(Kind.COPY)) & (lhs == rhs))
    collapsed = Constraints(num_vars=cons.num_vars, kind=cons.kind[keep],
                            lhs=lhs[keep], rhs=rhs[keep])
    num_collapsed = int((rep != np.arange(cons.num_vars)).sum())
    return collapsed, rep, num_collapsed


def expand_solution(points_to_of, rep: np.ndarray):
    """Per-variable points-to lookup that respects the collapse map.

    ``points_to_of`` is a callable (e.g. ``result.points_to``) defined on
    representatives; returns one defined on every original variable.
    """
    def lookup(v: int):
        return points_to_of(int(rep[v]))

    return lookup
