"""Points-to constraints (paper Section 4).

Andersen-style inclusion-based analysis works from four constraint
kinds derived from C statements::

    p = &q    ADDRESS_OF   q enters pts(p)
    p = q     COPY         pts(p) >= pts(q)          (edge q -> p)
    p = *q    LOAD         for v in pts(q): pts(p) >= pts(v)
    *p = q    STORE        for v in pts(p): pts(v) >= pts(q)

The paper evaluates on constraint files extracted from six SPEC 2000
programs (Fig. 10).  Those files are not redistributable, so
:func:`generate_spec_like` synthesizes constraint sets with the *exact*
variable/constraint counts of Fig. 10 and a C-like composition:
roughly a third address-of (initializations), copies dominating
(assignments, parameter passing), and a smaller load/store tail, with
Zipf-distributed variable popularity (globals and heap hubs are hot).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

__all__ = ["Kind", "Constraints", "generate_constraints",
           "generate_spec_like", "SPEC2000"]


class Kind(IntEnum):
    ADDRESS_OF = 0
    COPY = 1
    LOAD = 2
    STORE = 3


#: Fig. 10's benchmark sizes: name -> (variables, constraints).
SPEC2000 = {
    "186.crafty": (6126, 6768),
    "164.gzip": (1595, 1773),
    "256.bzip2": (1147, 1081),
    "181.mcf": (1230, 1509),
    "183.equake": (1317, 1279),
    "179.art": (586, 603),
}

#: C-like constraint mix (fractions of address-of/copy/load/store).
DEFAULT_MIX = (0.30, 0.40, 0.17, 0.13)


@dataclass
class Constraints:
    """A constraint set over ``num_vars`` variables."""

    num_vars: int
    kind: np.ndarray  # (c,) int8 Kind values
    lhs: np.ndarray   # (c,) int64: p of the forms above
    rhs: np.ndarray   # (c,) int64: q of the forms above

    def __post_init__(self) -> None:
        self.kind = np.ascontiguousarray(self.kind, dtype=np.int8)
        self.lhs = np.ascontiguousarray(self.lhs, dtype=np.int64)
        self.rhs = np.ascontiguousarray(self.rhs, dtype=np.int64)
        if not (self.kind.shape == self.lhs.shape == self.rhs.shape):
            raise ValueError("constraint arrays must align")
        for arr in (self.lhs, self.rhs):
            if arr.size and (arr.min() < 0 or arr.max() >= self.num_vars):
                raise ValueError("variable index out of range")

    @property
    def num_constraints(self) -> int:
        return self.kind.size

    def of_kind(self, kind: Kind) -> tuple[np.ndarray, np.ndarray]:
        sel = self.kind == int(kind)
        return self.lhs[sel], self.rhs[sel]

    def counts(self) -> dict:
        return {k.name: int((self.kind == int(k)).sum()) for k in Kind}


def generate_constraints(num_vars: int, num_constraints: int, *,
                         mix: tuple = DEFAULT_MIX, seed: int = 0,
                         block_size: int = 32, globals_frac: float = 0.02,
                         cross_block: float = 0.08) -> Constraints:
    """Synthesize a C-like constraint set.

    Variables are partitioned into *blocks* modeling functions: most
    constraints stay within one block (locals talking to locals), a
    small fraction crosses blocks (calls, returns), and a small pool of
    *globals* is referenced from everywhere.  The upper quarter of each
    block acts as its address-taken objects.  This locality keeps the
    transitive points-to closure sparse and shallow, as in real C
    programs — a generator without it produces points-to sets orders of
    magnitude denser than any SPEC input.
    """
    if num_vars < 8:
        raise ValueError("need at least 8 variables")
    rng = np.random.default_rng(seed)
    fracs = np.asarray(mix, dtype=np.float64)
    fracs = fracs / fracs.sum()
    counts = np.floor(fracs * num_constraints).astype(np.int64)
    counts[1] += num_constraints - counts.sum()  # remainder into copies
    kinds = np.concatenate([np.full(c, int(k), dtype=np.int8)
                            for k, c in zip(Kind, counts)])
    c = kinds.size

    n_globals = max(2, int(globals_frac * num_vars))
    n_blocks = max(1, (num_vars - n_globals) // block_size)

    def in_block(b: np.ndarray, objects: bool) -> np.ndarray:
        """Random variable inside block b (object region if requested)."""
        base = n_globals + b * block_size
        width = np.minimum(block_size, num_vars - base)
        lo = (width * 3) // 4 if objects else 0
        lo = np.where(objects, (width * 3) // 4, 0)
        off = lo + (rng.integers(0, 1 << 30, size=b.size)
                    % np.maximum(1, width - lo))
        return np.minimum(base + off, num_vars - 1)

    home = rng.integers(0, n_blocks, size=c)
    other = rng.integers(0, n_blocks, size=c)
    lhs = in_block(home, objects=False)
    rhs = in_block(home, objects=False)

    addr = kinds == int(Kind.ADDRESS_OF)
    rhs[addr] = in_block(home[addr], objects=True)
    # some address-of constraints target globals-as-objects
    g = addr & (rng.random(c) < 0.15)
    rhs[g] = rng.integers(0, n_globals, size=int(g.sum()))

    # Cross-block traffic: rhs from a different block or a global.
    cross = (~addr) & (rng.random(c) < cross_block)
    rhs[cross] = in_block(other[cross], objects=False)
    glob = (~addr) & (rng.random(c) < 0.10)
    rhs[glob] = rng.integers(0, n_globals, size=int(glob.sum()))

    # p = p copies are no-ops; nudge them apart.
    same = (kinds == int(Kind.COPY)) & (lhs == rhs)
    rhs[same] = (rhs[same] + 1) % num_vars
    order = rng.permutation(c)
    return Constraints(num_vars=num_vars, kind=kinds[order],
                       lhs=lhs[order], rhs=rhs[order])


def generate_spec_like(name: str, seed: int = 0) -> Constraints:
    """Constraint set with the exact Fig. 10 sizes for ``name``."""
    if name not in SPEC2000:
        raise KeyError(f"unknown benchmark {name!r}; know {sorted(SPEC2000)}")
    nvars, ncons = SPEC2000[name]
    return generate_constraints(nvars, ncons, seed=seed)
