"""Andersen-style points-to analysis (paper Sections 4, 6.4, 8.3)."""

from .constraints import (Constraints, Kind, SPEC2000, generate_constraints,
                          generate_spec_like)
from .bitset import BitMatrix
from .graph import PullGraph, PushGraph
from .andersen import PTAResult, andersen_pull
from .push import andersen_push
from .sequential import SerialPTAResult, andersen_serial
from .cycles import collapse_cycles, copy_sccs, expand_solution

__all__ = [
    "Constraints", "Kind", "SPEC2000", "generate_constraints",
    "generate_spec_like", "BitMatrix", "PullGraph", "PushGraph",
    "PTAResult", "andersen_pull", "andersen_push",
    "SerialPTAResult", "andersen_serial",
    "collapse_cycles", "copy_sccs", "expand_solution",
]
