"""The dynamically growing constraint graph (paper Sections 4 and 6.4).

Nodes are program variables (fixed count); directed edges carry
points-to flow and are added *monotonically and unpredictably* as load
and store constraints fire — the PTA morph behavior.

The GPU representation is pull-based: "each node keeps a list of its
incoming neighbors ... we cannot rely on a single static list ... but
need to maintain a separate list for each node to allow for dynamic
growth" (Section 6.4), allocated in-kernel as sorted chunks
(Section 7.1, Kernel-Only).  :class:`PullGraph` wraps a
:class:`~repro.vgpu.memory.ChunkAllocator` accordingly.

:class:`PushGraph` is the push-based alternative (per-node *outgoing*
lists) used by the push-vs-pull ablation.
"""

from __future__ import annotations

import numpy as np

from ..vgpu.memory import ChunkAllocator, ChunkList

__all__ = ["PullGraph", "PushGraph"]


class _EdgeLists:
    def __init__(self, num_nodes: int, chunk_size: int,
                 storage=None) -> None:
        self.num_nodes = num_nodes
        # ``storage`` (e.g. repro.resilience.FallbackStorage) replaces
        # the plain Kernel-Only allocator with the §7.1 fallback chain;
        # it must offer insert/of/degree/degrees and chunks_allocated,
        # so ``self.alloc`` stays valid for fragmentation accounting.
        self.storage = storage
        if storage is not None:
            self.alloc = storage
        else:
            self.alloc = ChunkAllocator(chunk_size)
            self.lists: list[ChunkList] = [self.alloc.new_list()
                                           for _ in range(num_nodes)]
        self.num_edges = 0

    def add(self, node: int, others: np.ndarray) -> int:
        if self.storage is not None:
            added = self.storage.insert(node, others)
        else:
            added = self.alloc.insert_many(self.lists[node], others)
        self.num_edges += added
        return added

    def of(self, node: int) -> np.ndarray:
        if self.storage is not None:
            return self.storage.of(node)
        return self.lists[node].to_array()

    def degree(self, node: int) -> int:
        if self.storage is not None:
            return self.storage.degree(node)
        return len(self.lists[node])

    def degrees(self) -> np.ndarray:
        if self.storage is not None:
            return self.storage.degrees()
        return np.asarray([len(l) for l in self.lists], dtype=np.int64)


class PullGraph(_EdgeLists):
    """Incoming-edge lists: ``add_edges(src, dst)`` files src under dst.

    Pull-based propagation then needs *no synchronization*: each node is
    updated by exactly one thread, which reads (possibly stale)
    neighbor sets — safe by monotonicity (Section 6.4).
    """

    def __init__(self, num_nodes: int, chunk_size: int = 1024,
                 storage=None) -> None:
        super().__init__(num_nodes, chunk_size, storage=storage)

    def add_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        added = 0
        order = np.argsort(dst, kind="stable")
        src, dst = src[order], dst[order]
        starts = np.flatnonzero(np.concatenate(
            ([True], dst[1:] != dst[:-1]))) if dst.size else []
        bounds = list(starts) + [dst.size]
        for i in range(len(bounds) - 1):
            d = int(dst[bounds[i]])
            added += self.add(d, src[bounds[i]: bounds[i + 1]])
        return added

    def incoming(self, node: int) -> np.ndarray:
        return self.of(node)


class PushGraph(_EdgeLists):
    """Outgoing-edge lists for the push-based variant."""

    def __init__(self, num_nodes: int, chunk_size: int = 1024,
                 storage=None) -> None:
        super().__init__(num_nodes, chunk_size, storage=storage)

    def add_edges(self, src: np.ndarray, dst: np.ndarray) -> int:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        added = 0
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        starts = np.flatnonzero(np.concatenate(
            ([True], src[1:] != src[:-1]))) if src.size else []
        bounds = list(starts) + [src.size]
        for i in range(len(bounds) - 1):
            s = int(src[bounds[i]])
            added += self.add(s, dst[bounds[i]: bounds[i + 1]])
        return added

    def outgoing(self, node: int) -> np.ndarray:
        return self.of(node)
