"""GPU-style Andersen points-to analysis (paper Sections 4, 6.4, 8.3).

Two-phase fixed-point iteration, exactly as the paper describes:

* **Phase 1 (edge addition)** — load (``p = *q``) and store (``*p = q``)
  constraints are evaluated against the current points-to sets and add
  their induced copy edges to the constraint graph; the per-node
  incoming-edge lists grow through the Kernel-Only chunk allocator.
* **Phase 2 (propagation)** — *pull-based*: each node with enabled
  incoming neighbors ORs their points-to sets into its own.  One thread
  per node means no synchronization; stale reads are safe by
  monotonicity.  Nodes with changed sets are "enabled" and moved to one
  side of the work array (Section 7.6) for the next sweep.

The phases repeat until neither adds information.  Points-to sets are
bit vectors (:class:`~repro.pta.bitset.BitMatrix`), as in [18].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.counters import OpCounter
from ..resilience.addition import FallbackStorage
from ..resilience.policy import launch_ok, maybe_activate_resilience
from ..vgpu.instrument import (current_tracer, maybe_activate,
                               maybe_activate_tracer, trace_span)
from .bitset import BitMatrix
from .constraints import Constraints, Kind
from .graph import PullGraph

__all__ = ["PTAResult", "andersen_pull", "serve_job"]


@dataclass
class PTAResult:
    pts: BitMatrix
    counter: OpCounter
    rounds: int
    edges_added: int
    propagation_sweeps: int
    #: the final constraint graph (:class:`~repro.pta.graph.PullGraph`),
    #: so incremental consumers (:mod:`repro.sessions`) can warm-start
    #: the fixed point instead of re-deriving every induced edge
    graph: PullGraph | None = None

    def points_to(self, var: int) -> np.ndarray:
        return self.pts.members(var)

    def total_facts(self) -> int:
        return int(self.pts.counts().sum())


def andersen_pull(cons: Constraints, *, chunk_size: int = 1024,
                  counter: OpCounter | None = None,
                  rep: np.ndarray | None = None,
                  max_rounds: int = 10_000,
                  sanitizer=None, tracer=None,
                  resilience=None) -> PTAResult:
    """Pull-based inclusion analysis; returns the fixed-point solution.

    ``rep`` (from :func:`repro.pta.cycles.collapse_cycles`) maps every
    variable to its copy-SCC representative; when given, dynamically
    added edge endpoints are routed through it so points-to facts
    accumulate at representatives.  Query the result via
    :func:`repro.pta.cycles.expand_solution`.

    ``sanitizer`` (opt-in) activates a :mod:`repro.analysis` detector
    around the solve; the bit-matrix's atomic-or traffic and the chunk
    allocator report to it.  ``tracer`` (opt-in) records the
    addedge/propagate rounds as a :mod:`repro.obs` span hierarchy.
    ``resilience`` (opt-in) puts the edge lists behind the §7.1
    fallback chain (Kernel-Only -> Kernel-Host -> Host-Only) and
    re-issues rounds refused by transient injected kernel aborts; the
    fixed point is a set, so a degraded run's result is byte-identical.
    """
    with maybe_activate(sanitizer):
        with maybe_activate_tracer(tracer):
            with maybe_activate_resilience(resilience):
                with trace_span("pta.andersen_pull", cat="driver"):
                    return _andersen_pull_impl(cons, chunk_size=chunk_size,
                                               counter=counter, rep=rep,
                                               max_rounds=max_rounds,
                                               resil=resilience)


def _andersen_pull_impl(cons: Constraints, *, chunk_size: int,
                        counter: OpCounter | None,
                        rep: np.ndarray | None,
                        max_rounds: int, resil=None) -> PTAResult:
    n = cons.num_vars
    if rep is None:
        rep = np.arange(n, dtype=np.int64)
    ctr = counter or OpCounter()
    pts = BitMatrix(n, n)
    W = pts.words
    storage = (FallbackStorage(n, chunk_size, resilience=resil)
               if resil is not None else None)
    graph = PullGraph(n, chunk_size, storage=storage)

    # Initialization kernel: address-of constraints seed the sets.
    p_addr, q_addr = cons.of_kind(Kind.ADDRESS_OF)
    pts.add(p_addr, q_addr)
    ctr.launch("pta.init", items=int(p_addr.size),
               word_writes=int(p_addr.size), barriers=1)

    # Static copy edges: q -> p (pts(p) >= pts(q)); filed as incoming[p].
    p_copy, q_copy = cons.of_kind(Kind.COPY)
    edges_added = graph.add_edges(q_copy, p_copy)
    ctr.launch("pta.addedge", items=int(p_copy.size),
               word_writes=2 * int(p_copy.size), barriers=1)

    p_load, q_load = cons.of_kind(Kind.LOAD)
    p_store, q_store = cons.of_kind(Kind.STORE)

    changed = np.ones(n, dtype=bool)   # nodes whose pts changed last sweep
    rounds = sweeps = 0
    while rounds < max_rounds:
        if not launch_ok(resil, "pta.round"):
            continue    # absorbed transient abort: re-issue the round
        rounds += 1
        tr = current_tracer()
        if tr is not None:
            tr.on_span_begin("pta.iteration", cat="iteration", round=rounds)
            tr.on_gauge("pta.enabled", int(changed.sum()))
        # ---- Phase 1: evaluate load/store constraints, add edges ---- #
        new_src: list[np.ndarray] = []
        new_dst: list[np.ndarray] = []
        ls_work = np.zeros(p_load.size + p_store.size, dtype=np.int64)
        reads = 0
        for i, (p, q) in enumerate(zip(p_load.tolist(), q_load.tolist())):
            if not changed[q] and rounds > 1:
                ls_work[i] = 1
                continue
            vs = pts.members(q)
            reads += W + vs.size
            ls_work[i] = 1 + vs.size
            if vs.size:
                new_src.append(rep[vs])
                new_dst.append(np.full(vs.size, p, dtype=np.int64))
        for i, (p, q) in enumerate(zip(p_store.tolist(), q_store.tolist())):
            j = p_load.size + i
            if not changed[p] and rounds > 1:
                ls_work[j] = 1
                continue
            vs = pts.members(p)
            reads += W + vs.size
            ls_work[j] = 1 + vs.size
            if vs.size:
                new_src.append(np.full(vs.size, q, dtype=np.int64))
                new_dst.append(rep[vs])
        added = 0
        if new_src:
            before = graph.alloc.chunks_allocated
            added = graph.add_edges(np.concatenate(new_src),
                                    np.concatenate(new_dst))
            ctr.bump("pta.chunks_malloced",
                     graph.alloc.chunks_allocated - before)
        edges_added += added
        ctr.launch("pta.addedge", items=int(ls_work.size), word_reads=reads,
                   word_writes=2 * added, barriers=1,
                   work_per_thread=ls_work)

        # ---- Phase 2: pull-based propagation sweep ------------------ #
        touched = changed.copy()
        new_changed = np.zeros(n, dtype=bool)
        # A node must pull if any incoming neighbor changed, or it just
        # gained edges (cheap conservative trigger: pull when any
        # incoming neighbor is touched; fresh edges came from touched
        # sources by construction of phase 1).
        pull_nodes = []
        pull_work = []
        reads = writes = 0
        for v in range(n):
            inc = graph.incoming(v)
            if inc.size == 0:
                continue
            if added == 0 and not touched[inc].any():
                continue
            pull_nodes.append(v)
            pull_work.append(1 + inc.size)
            reads += (inc.size + 1) * W
            if pts.union_into(v, inc):
                new_changed[v] = True
                writes += W
        sweeps += 1
        # Section 7.6: enabled nodes are compacted to one side, so warp
        # lanes see uniform work; the work vector is recorded sorted.
        work = np.asarray(sorted(pull_work, reverse=True), dtype=np.int64) \
            if pull_nodes else np.zeros(1, dtype=np.int64)
        ctr.launch("pta.propagate", items=len(pull_nodes), word_reads=reads,
                   word_writes=writes, barriers=1, work_per_thread=work)
        changed = new_changed
        if tr is not None:
            tr.on_gauge("pta.changed", int(changed.sum()))
            tr.on_gauge("pta.chunks", graph.alloc.chunks_allocated)
            tr.on_span_end()
        if not changed.any() and added == 0:
            break
    return PTAResult(pts=pts, counter=ctr, rounds=rounds,
                     edges_added=edges_added, propagation_sweeps=sweeps,
                     graph=graph)


# ------------------------------------------------------------------ #
# repro.serve adapter                                                #
# ------------------------------------------------------------------ #

def serve_job(params, strategy, seed, ctx):
    """Job adapter for :mod:`repro.serve` (``algorithm="pta"``).

    Synthesizes a C-like constraint set (``num_vars``,
    ``num_constraints``) from ``seed`` and solves it.  ``strategy``
    understands ``chunk_size`` (the Kernel-Only allocator granule) and
    ``variant`` (``"pull"``, the paper's choice, or ``"push"`` — the
    §6.4 alternative; both reach the identical fixed point).
    ``strategy="auto"`` substitutes the :mod:`repro.tune`
    cached/tuned configuration, and unknown keys raise ``ValueError``.
    ``params["mutations"]`` may carry an
    ``add_constraints``/``drop_constraints`` stream
    (:mod:`repro.serve.mutations`) — the incremental-PTA "new
    constraints arrive" shape — applied before solving.
    """
    from ..serve.mutations import apply_constraint_mutations, check_mutations
    from ..tune import resolve_strategy
    from .constraints import generate_constraints

    strategy = resolve_strategy("pta", params, strategy)
    mutations = check_mutations("pta", params.get("mutations", ()))
    cons = generate_constraints(int(params.get("num_vars", 120)),
                                int(params.get("num_constraints", 200)),
                                seed=seed)
    if mutations:
        cons = apply_constraint_mutations(cons, mutations)
    variant = strategy.get("variant", "pull")
    if variant == "pull":
        solver = andersen_pull
    else:
        from .push import andersen_push
        solver = andersen_push
    res = solver(cons, counter=ctx.counter,
                 chunk_size=int(strategy.get("chunk_size", 1024)),
                 resilience=getattr(ctx, "resilience", None))
    summary = {"rounds": res.rounds, "edges_added": res.edges_added,
               "propagation_sweeps": res.propagation_sweeps,
               "total_facts": res.total_facts(), "variant": variant}
    return (res.pts.bits, res.pts.counts()), summary
