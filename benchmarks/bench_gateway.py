"""Gateway sustained load: warm-pool latency and throughput under quotas.

Drives a closed-loop multi-tenant workload through a running
:class:`repro.gateway.Gateway` — thousands of small mixed jobs (SP,
PTA, engine recoloring, Boruvka MST) plus interleaved incremental
session batches, spread across three tenants whose quotas the load
generator *respects*: a :class:`repro.errors.QuotaExceeded` /
:class:`repro.errors.Overloaded` rejection makes it wait for its oldest
outstanding job, exactly like a well-behaved client under 429/503
backpressure.

Reported per run (rows appended to ``BENCH_serve.json``, schema
``repro.bench/1``, ``config="gateway"``):

* p50/p99 submit-to-done latency and jobs/sec over the whole mix;
* the cold-spawn comparison: time-to-first-result on a freshly spawned
  one-worker pool (``spawn`` start method, so the child pays the full
  driver-stack import) vs the warm pool's p50 — the delta *is* the
  startup cost the prespawned pool amortizes out of every request, and
  the run asserts warm p50 < cold time-to-first-result;
* digest spot checks: a deterministic subsample of jobs is replayed
  inline (``workers=0``) and must match byte-for-byte (the full
  per-job identity gate lives in the smoke and the --gateway tests).

Latency here is wall seconds of queue wait + worker service — worker
import/startup happens before the load starts and is excluded by
construction (that is the point of a warm pool).
"""

from __future__ import annotations

import statistics
import time

from harness import SCALE, emit, emit_bench, table

from repro.errors import AdmissionRejected
from repro.gateway import Gateway, GatewayConfig, TenantQuota
from repro.serve.jobs import JobSpec
from repro.serve.pool import run_job
from repro.sessions import Session, SessionSpec

WORKERS = 4
TENANTS = ("acme", "globex", "initech")
#: total plain jobs at SCALE=1 (CI smoke divides via REPRO_BENCH_SCALE)
N_JOBS = max(12, 1200 // SCALE)
#: every Nth job is inline-replayed for a digest spot check
SPOT_EVERY = 97

TEMPLATES = (
    ("sp", {"num_vars": 30, "k": 3, "ratio": 3.0}),
    ("pta", {"num_vars": 40, "num_constraints": 80}),
    ("engine", {"num_nodes": 60, "num_edges": 180}),
    ("mst", {"num_nodes": 48, "num_edges": 144}),
)

SESSION_BATCHES = [
    [{"op": "add_edges", "count": 4, "seed": 1}],
    [{"op": "reweight_edges", "count": 3, "seed": 2}],
    [{"op": "drop_edges", "count": 2, "seed": 3}],
    [{"op": "add_edges", "count": 3, "seed": 4}],
]


def job_spec(i: int) -> JobSpec:
    algo, params = TEMPLATES[i % len(TEMPLATES)]
    return JobSpec(name=f"{algo}-{i}", algorithm=algo,
                   params=params, seed=100 + i)


def session_spec(tenant: str) -> SessionSpec:
    return SessionSpec(name=f"{tenant}-stream", algorithm="mst",
                       params={"num_nodes": 80, "num_edges": 240},
                       seed=7)


def submit_with_backpressure(gateway, outstanding, submit_fn):
    """Closed-loop client: on rejection, wait for the oldest in-flight
    handle and retry.  Returns the handle; counts rejections."""
    rejections = 0
    while True:
        try:
            return submit_fn(), rejections
        except AdmissionRejected:
            rejections += 1
            # Well-behaved backpressure: finish something, then retry.
            waiting = [h for h in outstanding if not h.done]
            if waiting:
                waiting[0].wait(300)
            else:
                time.sleep(0.005)


def run_warm() -> dict:
    config = GatewayConfig(
        workers=WORKERS,
        tenants={t: TenantQuota(max_inflight=12, max_queued=24)
                 for t in TENANTS})
    t_start = time.perf_counter()
    with Gateway(config) as gateway:
        startup_s = time.perf_counter() - t_start
        warm_s = max(w.warm_s for w in gateway.pool.workers.values())

        # Time-to-first-result on the *idle* warm pool: the number the
        # cold-spawn run is compared against (same job, no queue wait).
        t_first = time.perf_counter()
        gateway.submit(TENANTS[0], job_spec(0), key="warm-first").wait(300)
        warm_first_s = time.perf_counter() - t_first

        handles, session_handles = [], []
        rejections = 0
        next_batch = {t: 0 for t in TENANTS}
        t0 = time.perf_counter()
        for i in range(N_JOBS):
            tenant = TENANTS[i % len(TENANTS)]
            spec = job_spec(i)
            h, rej = submit_with_backpressure(
                gateway, handles,
                lambda: gateway.submit(tenant, spec))
            rejections += rej
            handles.append(h)
            # Interleave one session batch per tenant every ~N/4 jobs.
            if i % max(1, N_JOBS // (len(SESSION_BATCHES) *
                                     len(TENANTS))) == 0 and \
                    next_batch[tenant] < len(SESSION_BATCHES):
                ops = SESSION_BATCHES[next_batch[tenant]]
                next_batch[tenant] += 1
                hb, rej = submit_with_backpressure(
                    gateway, handles,
                    lambda: gateway.session_batch(
                        tenant, session_spec(tenant), ops))
                rejections += rej
                session_handles.append(hb)
        for h in handles + session_handles:
            h.wait(600)
        wall = time.perf_counter() - t0

        failed = [h for h in handles + session_handles if not h.ok]
        assert not failed, [(h.job_id, h.error) for h in failed[:5]]

        # Digest spot checks against the inline workers=0 path.
        for i in range(0, N_JOBS, SPOT_EVERY):
            inline = run_job(job_spec(i))
            assert handles[i].digest() == inline.result.digest, \
                f"digest mismatch on job {i}"
        per_tenant_batches = {t: [] for t in TENANTS}
        for hb in session_handles:
            per_tenant_batches[hb.tenant].append(hb)
        for tenant, hbs in per_tenant_batches.items():
            session = Session.open(session_spec(tenant))
            for k, hb in enumerate(hbs):
                want = session.apply_batch(SESSION_BATCHES[k]).digest
                assert hb.digest() == want, \
                    f"session digest mismatch {tenant} batch {k + 1}"

        latencies = sorted(h.latency_s for h in handles + session_handles)
        retries = sum(h.retries for h in handles + session_handles)
        stats = gateway.stats()
        gateway.drain()

    n = len(latencies)
    return {
        "jobs": len(handles), "session_batches": len(session_handles),
        "tenants": len(TENANTS), "workers": WORKERS,
        "wall_s": round(wall, 4),
        "jobs_per_s": round(n / wall, 2),
        "p50_latency_s": round(latencies[n // 2], 5),
        "p99_latency_s": round(latencies[min(n - 1, (n * 99) // 100)], 5),
        "mean_latency_s": round(statistics.fmean(latencies), 5),
        "rejections": rejections, "retries": retries,
        "startup_s": round(startup_s, 4),
        "worker_warm_s": round(warm_s, 4),
        "warm_first_result_s": round(warm_first_s, 4),
        "events": stats["events"]["counts"],
    }


def run_cold() -> float:
    """Time-to-first-result on a cold ``spawn`` pool (one worker that
    must import the whole driver stack before it can serve)."""
    config = GatewayConfig(workers=1, start_method="spawn",
                           default_quota=TenantQuota())
    t0 = time.perf_counter()
    with Gateway(config) as gateway:
        gateway.submit("cold", job_spec(0)).wait(300)
        return time.perf_counter() - t0


def main() -> None:
    warm = run_warm()
    cold_s = run_cold()

    # The whole point of the warm pool: per-request latency excludes
    # import/startup.  Same job, idle pool, cold spawn vs warm worker —
    # the delta is the startup cost prespawning amortizes away.
    assert warm["warm_first_result_s"] < cold_s, \
        (f"warm first-result {warm['warm_first_result_s']}s not better "
         f"than cold first-result {cold_s:.3f}s")

    total = warm["jobs"] + warm["session_batches"]
    rows = [
        ["mixed jobs + session batches", str(total)],
        ["tenants x workers", f"{warm['tenants']} x {warm['workers']}"],
        ["wall", f"{warm['wall_s']:.2f}s"],
        ["throughput", f"{warm['jobs_per_s']:.1f} jobs/s"],
        ["p50 / p99 latency",
         f"{warm['p50_latency_s'] * 1e3:.1f} / "
         f"{warm['p99_latency_s'] * 1e3:.1f} ms"],
        ["quota rejections absorbed", str(warm["rejections"])],
        ["cold spawn first-result", f"{cold_s:.2f}s"],
        ["warm pool first-result", f"{warm['warm_first_result_s']:.3f}s"],
        ["warm-up per worker (excluded)",
         f"{warm['worker_warm_s']:.3f}s"],
    ]
    text = table(["metric", "value"], rows)
    text += ("\n\nwarm p50 excludes worker import/startup by "
             "construction; cold row pays it inline.\n"
             f"digest spot checks (every {SPOT_EVERY}th job + all "
             "session batches) byte-identical to workers=0: yes")
    emit("gateway_load", text)
    emit_bench("serve", [
        {"config": "gateway", **{k: v for k, v in warm.items()
                                 if k != "events"}},
        {"config": "gateway_cold", "workers": 1,
         "cold_first_result_s": round(cold_s, 4),
         "warm_first_result_s": warm["warm_first_result_s"],
         "warm_p50_latency_s": warm["p50_latency_s"]},
    ], append=True)


def test_gateway_load_benchmark():
    """CI entry point (reduced scale via REPRO_BENCH_SCALE)."""
    main()


if __name__ == "__main__":
    main()
