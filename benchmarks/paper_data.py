"""The paper's published numbers (PPoPP 2013, Section 8), used by every
benchmark to print paper-vs-reproduction tables.

Times are seconds unless noted.  Inputs are identified by the paper's
names; the reproduction scales them down (see ``SCALE_NOTES``).
"""

# ----------------------------------------------------------------- #
# Fig. 6/7 — DMR.  Input sizes in millions of triangles; speedups
# over the serial Triangle program.
FIG7_DMR = {
    # total Mtris: (bad Mtris, galois48_speedup, gpu_speedup)
    0.5: (0.26, 27.6, 80.5),
    1.0: (0.48, 28.6, 54.6),
    2.0: (0.95, 27.2, 54.8),
    10.0: (4.75, 26.5, 60.6),
}

# Fig. 8 — DMR optimization breakdown, 10M-triangle mesh, times in ms.
FIG8_DMR = [
    ("Topology-driven with mesh-partitioning", 68000),
    ("3-phase marking", 10000),
    ("+ Atomic-free global barrier", 6360),
    ("+ Optimized memory layout", 5380),
    ("+ Adaptive parallelism", 2200),
    ("+ Reduced thread-divergence", 2020),
    ("+ Single-precision arithmetic", 1020),
    ("+ On-demand memory allocation", 1140),
]

# Fig. 9 — SP, times in seconds. (clauses M, literals N, K): (galois48, gpu)
FIG9_SP = {
    (4.2e6, 1e6, 3): (108, 35),
    (8.4e6, 2e6, 3): (230, 73),
    (12.6e6, 3e6, 3): (336, 117),
    (16.8e6, 4e6, 3): (445, 157),
    (9.9e6, 1e6, 4): (3033, 85),
    (21.1e6, 1e6, 5): (40832, 178),
    (43.4e6, 1e6, 6): (None, 368),  # multicore ran out of time
}

# Fig. 10 — PTA, times in ms per benchmark: (vars, cons, serial, galois48, gpu)
FIG10_PTA = {
    "186.crafty": (6126, 6768, 595, 86, 44.4),
    "164.gzip": (1595, 1773, 456, 73, 7.1),
    "256.bzip2": (1147, 1081, 396, 94, 2.7),
    "181.mcf": (1230, 1509, 382, 59, 8.7),
    "183.equake": (1317, 1279, 436, 49, 3.3),
    "179.art": (586, 603, 485, 72, 7.4),
}
FIG10_GEOMEAN_SPEEDUP = 9.3  # GPU over Galois-48

# Fig. 11 — MST, times in seconds: (nodes M, edges M, g2.1.4, g2.1.5, gpu)
FIG11_MST = {
    "USA": (23.9, 57.7, 8.2, 3.0, 35.8),
    "W": (6.3, 15.1, 2.3, 0.8, 9.5),
    "RMAT20": (1.0, 8.3, 1393.6, 0.4, 26.8),
    "Random4-20": (1.0, 4.0, 281.9, 0.4, 4.7),
    "grid-2d-24": (16.8, 33.6, 14.3, 5.0, 71.8),
    "grid-2d-20": (1.0, 2.0, 0.7, 0.2, 0.9),
}

SCALE_NOTES = """\
All inputs are scaled down ~100x from the paper (pure-Python simulation);
reported comparisons are modeled times on the paper's hardware derived
from measured operation counts.  See DESIGN.md section 2 and
EXPERIMENTS.md for the per-experiment scale factors and deviations.
"""
