"""Fig. 8 — effect of the individual optimizations on DMR runtime.

The paper's breakdown on a 10M-triangle mesh (ms):

    1  Topology-driven with mesh-partitioning   68,000
    2  3-phase marking                          10,000
    3  + Atomic-free global barrier              6,360
    4  + Optimized memory layout                 5,380
    5  + Adaptive parallelism                    2,200
    6  + Reduced thread-divergence               2,020
    7  + Single-precision arithmetic             1,020
    8  + On-demand memory allocation             1,140

Row 1 is reproduced as lock-based conflict claiming (per-element atomic
acquire/release — the pre-marking scheme), rows 2-8 switch on the same
cumulative flags the paper lists.  The reproduction runs this breakdown at 1/500 scale
(the 2.0M-paper-triangle input, i.e. ~20k triangles): eight full
refinements of the 1/100-scale mesh would dominate the suite's wall
time, and the optimization *ratios* are scale-stable.
"""


from conftest import mesh_for
from harness import emit, fmt_time, table
from paper_data import FIG8_DMR
from repro.core.adaptive import FixedConfig
from repro.dmr import DMRConfig, refine_gpu
from repro.vgpu import CostModel
from repro.vgpu.device import LaunchConfig
from repro.vgpu.sync import FENCE, HIERARCHICAL

FIXED = FixedConfig(LaunchConfig(blocks=112, threads_per_block=512))

CONFIGS = [
    DMRConfig(conflict="locks", barrier=HIERARCHICAL, layout_opt=False,
              adaptive=FixedConfig(LaunchConfig(112, 512)), sort_work=False),
    DMRConfig(conflict="3phase", barrier=HIERARCHICAL, layout_opt=False,
              adaptive=FixedConfig(LaunchConfig(112, 512)), sort_work=False),
    DMRConfig(conflict="3phase", barrier=FENCE, layout_opt=False,
              adaptive=FixedConfig(LaunchConfig(112, 512)), sort_work=False),
    DMRConfig(conflict="3phase", barrier=FENCE, layout_opt=True,
              adaptive=FixedConfig(LaunchConfig(112, 512)), sort_work=False),
    DMRConfig(conflict="3phase", barrier=FENCE, layout_opt=True,
              sort_work=False),
    DMRConfig(conflict="3phase", barrier=FENCE, layout_opt=True,
              sort_work=True),
    DMRConfig(conflict="3phase", barrier=FENCE, layout_opt=True,
              sort_work=True, precision="float32"),
    DMRConfig(conflict="3phase", barrier=FENCE, layout_opt=True,
              sort_work=True, precision="float32", growth_factor=1.0),
]


def test_fig8_optimization_breakdown(benchmark):
    cm = CostModel()
    mesh = mesh_for(2.0)
    rows = []
    modeled = []
    for (label, paper_ms), cfg in zip(FIG8_DMR, CONFIGS):
        res = refine_gpu(mesh.copy(), cfg)
        assert res.converged, label
        t = cm.gpu_time(res.counter)
        modeled.append(t)
        rows.append((label, f"{paper_ms}", fmt_time(t),
                     f"{res.abort_ratio:.2f}"))
    txt = table(["configuration (cumulative)", "paper (ms)",
                 "ours (modeled)", "abort ratio"], rows)
    emit("fig8_dmr_optimizations", txt)

    # Shape assertions: marking beats locks; the fence barrier beats the
    # hierarchical one; the fully optimized configuration clearly beats
    # the baseline.  (The paper's cumulative 60x gain needs full 10M-
    # triangle scale, where the compute terms the later optimizations
    # shrink actually dominate; at 1/500 scale the barrier rows carry
    # most of the improvement — documented in EXPERIMENTS.md.)
    assert modeled[1] < modeled[0], "3-phase marking must beat locks"
    assert modeled[2] < modeled[1], "fence barrier must beat hierarchical"
    assert min(modeled[6], modeled[7]) < modeled[0] / 2

    benchmark.pedantic(
        lambda: refine_gpu(mesh.copy(), CONFIGS[-2], ).rounds,
        rounds=1, iterations=1)
