"""Fig. 9 — Survey Propagation performance.

Paper (seconds):

    M (clauses)  N (literals)  K   Galois-48   GPU
    4.2M         1M            3   108         35
    8.4M         2M            3   230         73
    12.6M        3M            3   336         117
    16.8M        4M            3   445         157
    9.9M         1M            4   3,033       85
    21.1M        1M            5   40,832      178
    43.4M        1M            6   OOT         368

Key shapes: the GPU scales linearly in problem size; the multicore
version blows up with K because it lacks the GPU's *edge cache* and
re-walks neighbor lists whose length grows with K (and times out at
K = 6).  We run SP + decimation once per input (1/100 scale) and price
the same run twice: with cached per-edge work for the GPU and with
degree-proportional re-traversal for the multicore baseline.
"""


from harness import SCALE, emit, emit_bench, fmt_time, table
from paper_data import FIG9_SP, SCALE_NOTES
from repro.core.counters import OpCounter
from repro.satsp import FactorGraph, SPConfig, random_ksat
from repro.satsp.sp import run_sp
from repro.vgpu import CostModel

#: (paper N, K) -> our N
INPUTS = [(1e6, 3), (2e6, 3), (3e6, 3), (4e6, 3),
          (1e6, 4), (1e6, 5), (1e6, 6)]


def uncached_counter(gpu_counter: OpCounter, n_vars: int, n_edges: int,
                     k: int) -> OpCounter:
    """Re-derive the multicore (no edge cache) counter from the cached
    run: identical numerics, but each edge's update re-walks its
    variable's incident list (~degree edges) and its clause (K-1 others),
    instead of reading O(1) cached aggregates (Section 8.2)."""
    out = OpCounter()
    out.merge(gpu_counter)
    deg = 2.0 * n_edges / max(1, n_vars)
    ks = out.kernel("sp.update")
    factor = (3 * deg + 3 * k) / 8.0  # cached charges 8 words per edge
    ks.word_reads = int(ks.word_reads * factor)
    ks.useful_lane_steps = int(ks.useful_lane_steps * (1 + deg) / 3.0)
    ks.issued_lane_steps = ks.useful_lane_steps
    return out


def test_fig9_sp(benchmark):
    cm = CostModel()
    rows = []
    checks = {}
    for paper_n, k in INPUTS:
        n = int(paper_n / 100) // SCALE
        n = max(1000, n)
        cnf = random_ksat(n, k, seed=int(k * 10))
        ctr = OpCounter()
        fg = FactorGraph(cnf, seed=1)
        cfg = SPConfig(seed=1, max_iters=100, max_phases=12,
                       require_convergence=False)
        phases, iters, contradiction = run_sp(fg, cfg, ctr)
        gpu_t = cm.gpu_time(ctr)
        cpu_ctr = uncached_counter(ctr, fg.n, fg.evar.size, k)
        cpu_t = cm.cpu_time(cpu_ctr, 48)
        paper_key = list(FIG9_SP)[INPUTS.index((paper_n, k))]
        paper_cpu, paper_gpu = FIG9_SP[paper_key]
        rows.append((f"{paper_n/1e6:.0f}M", k, n, iters,
                     fmt_time(paper_cpu) if paper_cpu else "OOT",
                     fmt_time(cpu_t), fmt_time(paper_gpu), fmt_time(gpu_t)))
        checks[(paper_n, k)] = (cpu_t, gpu_t)
    txt = table(["paper N", "K", "our N", "SP iters",
                 "paper galois48", "ours galois48",
                 "paper GPU", "ours GPU"], rows)
    emit("fig9_sp", SCALE_NOTES + "\n" + txt)
    emit_bench("fig9", [{"paper_n": pn, "k": k,
                         "galois48_s": cpu_t, "gpu_s": gpu_t}
                        for (pn, k), (cpu_t, gpu_t) in checks.items()])

    # Shape assertions.
    # (1) GPU beats the uncached multicore on every input.
    for (pn, k), (cpu_t, gpu_t) in checks.items():
        assert gpu_t < cpu_t, f"GPU must win on N={pn}, K={k}"
    # (2) The multicore's disadvantage explodes with K (the edge cache),
    #     mirroring the paper's 108s -> 40,832s blowup vs GPU 35 -> 178s.
    ratio_k3 = checks[(1e6, 3)][0] / checks[(1e6, 3)][1]
    ratio_k5 = checks[(1e6, 5)][0] / checks[(1e6, 5)][1]
    assert ratio_k5 > ratio_k3, "cache advantage must grow with K"
    # (3) GPU time scales roughly linearly with N at K=3.
    t1 = checks[(1e6, 3)][1]
    t4 = checks[(4e6, 3)][1]
    assert t4 < 12 * t1

    cnf = random_ksat(2000, 3, seed=9)
    benchmark.pedantic(
        lambda: run_sp(FactorGraph(cnf, seed=9),
                       SPConfig(seed=9, max_iters=50, max_phases=3)),
        rounds=1, iterations=1)
