"""Fig. 11 — Boruvka MST on six graphs.

Paper (seconds):

    graph        N(M)   M(M)   Galois2.1.4  Galois2.1.5  GPU
    USA          23.9   57.7   8.2          3.0          35.8
    W             6.3   15.1   2.3          0.8           9.5
    RMAT20        1.0    8.3   1,393.6      0.4          26.8
    Random4-20    1.0    4.0   281.9        0.4           4.7
    grid-2d-24   16.8   33.6   14.3         5.0          71.8
    grid-2d-20    1.0    2.0   0.7          0.2           0.9

Key shapes reproduced: (1) the explicit-list-merging 2.1.4 baseline is
fast on sparse road/grid graphs but blows up super-linearly on the
dense power-law inputs (RMAT 1393s!), while (2) the component-based GPU
code is insensitive to density — so the GPU wins on dense graphs and
the sparse/dense flip lands where the paper puts it; (3) the
component-based union-find 2.1.5 rewrite beats 2.1.4 everywhere.

Deviation (documented in EXPERIMENTS.md): our GPU kernels are cleaner
than the paper's (their per-component node-list scans serialize on
giant late-round components; we model that critical path, but at 1/100
scale it does not dominate), so our GPU does not *lose* to Galois 2.1.5
on sparse graphs the way the paper's does.
"""


from harness import SCALE, emit, emit_bench, fmt_time, table
from paper_data import FIG11_MST, SCALE_NOTES
from repro.graphgen import grid2d, random_graph, rmat, road_network
from repro.mst import boruvka_gpu, boruvka_merge, boruvka_unionfind
from repro.vgpu import CostModel


def inputs():
    s = SCALE
    return {
        "USA": road_network(239_000 // s, seed=1),
        "W": road_network(63_000 // s, seed=2),
        "RMAT20": rmat(max(8, 16 - (s - 1).bit_length()), 8, seed=3),
        "Random4-20": random_graph(65_536 // s, 4 * 65_536 // s, seed=4),
        "grid-2d-24": grid2d(max(16, 410 // s), seed=5),
        "grid-2d-20": grid2d(max(8, 102 // s), seed=6),
    }


def test_fig11_mst(benchmark):
    cm = CostModel()
    rows = []
    ours = {}
    for name, (n, src, dst, w) in inputs().items():
        gpu = boruvka_gpu(n, src, dst, w)
        merge = boruvka_merge(n, src, dst, w)
        uf = boruvka_unionfind(n, src, dst, w)
        assert gpu.total_weight == merge.total_weight == uf.total_weight, name
        t_gpu = cm.gpu_time(gpu.counter)
        t_m = cm.cpu_time(merge.counter, 48)
        t_u = cm.cpu_time(uf.counter, 48)
        ours[name] = (t_m, t_u, t_gpu)
        p_n, p_m, p_214, p_215, p_gpu = FIG11_MST[name]
        rows.append((name, n, src.size,
                     f"{p_214}", fmt_time(t_m),
                     f"{p_215}", fmt_time(t_u),
                     f"{p_gpu}", fmt_time(t_gpu)))
    txt = SCALE_NOTES + "\n" + table(
        ["graph", "our N", "our M",
         "paper 2.1.4(s)", "ours 2.1.4",
         "paper 2.1.5(s)", "ours 2.1.5",
         "paper GPU(s)", "ours GPU"], rows)
    emit("fig11_mst", txt)
    emit_bench("fig11", [{"graph": name, "galois214_s": t_m,
                          "galois215_s": t_u, "gpu_s": t_gpu}
                         for name, (t_m, t_u, t_gpu) in ours.items()])

    # Shape assertions.
    # (1) 2.1.4's dense blowup: its RMAT handicap (time per edge vs the
    #     road network) must exceed 2x.
    m_edges = {name: inp[1].size for name, inp in inputs().items()}
    rmat_rate = ours["RMAT20"][0] / m_edges["RMAT20"]
    usa_rate = ours["USA"][0] / m_edges["USA"]
    assert rmat_rate > 2 * usa_rate, "2.1.4 density blowup missing"
    # (2) 2.1.5 beats 2.1.4 on the dense graphs (its raison d'etre).
    assert ours["RMAT20"][1] < ours["RMAT20"][0]
    assert ours["Random4-20"][1] < ours["Random4-20"][0]
    # (3) GPU beats 2.1.4 on the dense graphs by a large factor
    #     (paper: 1393.6s -> 26.8s on RMAT20).
    assert ours["RMAT20"][2] < ours["RMAT20"][0] / 5

    n, src, dst, w = grid2d(64, seed=9)
    benchmark.pedantic(lambda: boruvka_gpu(n, src, dst, w).total_weight,
                       rounds=3, iterations=1)
