"""Scenario-replay benchmark: what does the regression gate cost?

Replays the whole checked-in corpus (``tests/scenarios/``) through
:func:`repro.scenarios.verify_paths` — the exact code path CI gates on
— and reports per-scenario replay wall time plus the corpus total.
The point of the number is budgeting: the corpus is meant to be cheap
enough to replay on every push, and this trajectory is where we notice
it stops being cheap.

Every replay must reproduce its goldens; a mismatch fails the
benchmark rather than producing a misleading timing for a broken
corpus.

Emits ``BENCH_scenarios.json`` (schema ``repro.bench/1``) with one row
per scenario and a ``corpus`` total row.
"""

from __future__ import annotations

import time

from harness import REPO_DIR, emit, emit_bench, fmt_time, table

from repro.scenarios import verify_paths

CORPUS_DIR = REPO_DIR / "tests" / "scenarios"


def test_scenario_replay_benchmark():
    t0 = time.perf_counter()
    corpus = verify_paths([CORPUS_DIR])
    total_wall = time.perf_counter() - t0

    assert not corpus.errors, corpus.errors
    assert corpus.reports, f"no scenarios found under {CORPUS_DIR}"
    bad = [r for r in corpus.reports if not r.ok]
    assert not bad, {r.scenario: [j.to_dict() for j in r.failed]
                     for r in bad}

    rows, bench_rows = [], []
    n_jobs = 0
    for r in sorted(corpus.reports, key=lambda r: r.scenario):
        n_jobs += len(r.jobs)
        rows.append([r.scenario, str(len(r.jobs)), fmt_time(r.wall_s),
                     "ok"])
        bench_rows.append({"scenario": r.scenario, "jobs": len(r.jobs),
                           "replay_wall_s": round(r.wall_s, 4),
                           "ok": True})
    rows.append(["total", str(n_jobs), fmt_time(total_wall),
                 f"{len(corpus.reports)} scenarios"])
    bench_rows.append({"scenario": "corpus", "jobs": n_jobs,
                       "scenarios": len(corpus.reports),
                       "replay_wall_s": round(total_wall, 4), "ok": True})

    text = table(["scenario", "jobs", "replay wall", "status"], rows)
    emit("scenario_replay", text)
    emit_bench("scenarios", bench_rows)


if __name__ == "__main__":
    test_scenario_replay_benchmark()
