"""Extension — the morph toolkit on two workloads beyond the paper's four.

1. **Concurrent Delaunay construction** (Qi et al. territory, Section 9):
   thousands of points insert themselves through the same 3-phase
   machinery as DMR.  The parallelism profile mirrors Fig. 2's shape.
2. **Parallel edge-flip legalization** (Navarro et al., Section 9): a
   pure morph — no allocation, no deletion — run on the generic morph
   engine.

Both demonstrate the paper's closing claim that the techniques carry to
other morph algorithms.
"""

import numpy as np

from harness import SCALE, emit, fmt_time, table
from repro.meshing import TriMesh, gpu_insert_points, legalize_gpu, \
    random_legal_flips, random_points_mesh
from repro.vgpu import CostModel


def test_extension_concurrent_insertion(benchmark):
    cm = CostModel()
    n = max(200, 1500 // SCALE)
    rng = np.random.default_rng(5)
    x, y = rng.random(n), rng.random(n)
    box = TriMesh(np.array([-0.1, 1.1, 1.1, -0.1]),
                  np.array([-0.1, -0.1, 1.1, 1.1]),
                  np.array([[0, 1, 2], [0, 2, 3]], dtype=np.int64))
    res = gpu_insert_points(box, x, y, seed=5)
    res.mesh.validate(check_delaunay=True)
    par = res.parallelism
    txt = table(["metric", "value"], [
        ("points inserted", res.inserted),
        ("rounds", res.rounds),
        ("abort ratio", f"{res.abort_ratio:.2f}"),
        ("peak concurrent insertions", max(par)),
        ("modeled GPU time", fmt_time(cm.gpu_time(res.counter))),
    ])
    emit("extension_insertion", txt)
    assert res.inserted == n
    assert max(par) > par[0]  # ramp-up, like Fig. 2

    benchmark.pedantic(
        lambda: gpu_insert_points(
            TriMesh(np.array([-0.1, 1.1, 1.1, -0.1]),
                    np.array([-0.1, -0.1, 1.1, 1.1]),
                    np.array([[0, 1, 2], [0, 2, 3]], dtype=np.int64)),
            x[:200], y[:200], seed=6).inserted,
        rounds=1, iterations=1)


def test_extension_edge_flip(benchmark):
    cm = CostModel()
    mesh = random_points_mesh(max(100, 2000 // SCALE), seed=6).copy()
    flips_in = random_legal_flips(mesh, mesh.num_triangles // 10, seed=6)
    res = legalize_gpu(mesh, seed=6)
    mesh.validate(check_delaunay=True)
    txt = table(["metric", "value"], [
        ("random un-legalizing flips applied", flips_in),
        ("legalizing flips", res.flips),
        ("rounds", res.rounds),
        ("abort ratio", f"{res.abort_ratio:.2f}"),
        ("modeled GPU time", fmt_time(cm.gpu_time(res.counter))),
    ])
    emit("extension_edgeflip", txt)
    assert res.flips >= 1

    m2 = random_points_mesh(100, seed=7).copy()
    random_legal_flips(m2, 10, seed=7)
    benchmark.pedantic(lambda: legalize_gpu(m2.copy(), seed=7).flips,
                       rounds=1, iterations=1)
