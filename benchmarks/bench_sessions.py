"""Incremental sessions: modeled delta-recompute cost vs. full re-solve.

The :mod:`repro.sessions` pitch is quantitative: for a *small* mutation
batch (≤ 1% of the input), answering from the previous solution should
cost a small fraction of a cold recompute on the §7 cost model.  This
trajectory measures exactly that for the two algorithms with real delta
planners — MST (forest sparsification + sparse finish) and PTA (warm-
started Andersen fixed point) — across seeds, and asserts the headline
≥ 5x modeled-cost win for batches that are ≤ 1% of the input.  The
assertion only applies at full scale: reduced ``REPRO_BENCH_SCALE``
smoke sizes shrink the input until fixed per-batch kernel overheads
dominate, so there the trajectory still records honest numbers but
only the differential identity is enforced.

Every measured session is also verified against a cold full recompute
on the equivalently mutated input — a timing for a wrong answer would
be worse than no timing.

Emits ``BENCH_sessions.json`` (schema ``repro.bench/1``): one row per
(algorithm, seed) with the full-solve cost, mean delta cost, dirty
fraction, and speedup.
"""

from __future__ import annotations

from harness import SCALE, emit, emit_bench, fmt_time, table

from repro.sessions import Session, SessionSpec

SEEDS = (1, 2, 3)
BATCHES_PER_SESSION = 3


def _scaled(value: int, floor: int = 1) -> int:
    return max(floor, value // SCALE)


def _configs():
    """(algorithm, params, one small batch) at the current scale."""
    return [
        ("mst",
         {"num_nodes": _scaled(4000, 40), "num_edges": _scaled(32000, 160)},
         [{"op": "add_edges", "count": _scaled(30), "seed": 11},
          {"op": "reweight_edges", "count": _scaled(30), "seed": 12}]),
        ("pta",
         {"num_vars": _scaled(1500, 60), "num_constraints": _scaled(6000, 140)},
         [{"op": "add_constraints", "count": _scaled(12), "seed": 21}]),
    ]


def test_session_delta_cost_benchmark():
    rows, bench_rows = [], []
    for algorithm, params, batch in _configs():
        for seed in SEEDS:
            spec = SessionSpec(
                name=f"{algorithm}-bench-{seed}", algorithm=algorithm,
                params=params, strategy={}, seed=seed,
                batches=[batch] * BATCHES_PER_SESSION)
            session = Session.open(spec)
            full_cost = session.full_cost_s
            results = [session.apply_batch(ops) for ops in spec.batches]

            matches, cold = session.verify_full()
            assert matches, (
                f"{algorithm} seed={seed}: session digest "
                f"{session.digest()} != cold {cold}")
            assert all(r.mode == "delta" for r in results), (
                f"{algorithm} seed={seed}: expected pure delta batches, "
                f"got {[r.mode for r in results]}")

            delta_cost = sum(r.cost_s for r in results) / len(results)
            dirty_frac = max(r.dirty_fraction for r in results)
            mutated_frac = (sum(op.get("count", 0) for op in batch)
                            / max(1, results[-1].population))
            speedup = full_cost / delta_cost if delta_cost > 0 else float("inf")
            if SCALE == 1 and mutated_frac <= 0.01:
                assert speedup >= 5.0, (
                    f"{algorithm} seed={seed}: small-delta speedup "
                    f"{speedup:.2f}x misses the 5x bar "
                    f"(full {full_cost:.6f}s, delta {delta_cost:.6f}s)")

            rows.append([algorithm, str(seed),
                         str(results[-1].population),
                         f"{mutated_frac:.4f}", f"{dirty_frac:.3f}",
                         fmt_time(full_cost), fmt_time(delta_cost),
                         f"{speedup:.1f}x"])
            bench_rows.append({
                "algorithm": algorithm, "seed": seed,
                "population": results[-1].population,
                "mutated_fraction": round(mutated_frac, 6),
                "dirty_fraction": round(dirty_frac, 6),
                "full_cost_s": round(full_cost, 9),
                "delta_cost_s": round(delta_cost, 9),
                "speedup": round(speedup, 3),
            })

    text = table(["algo", "seed", "population", "mutated", "dirty",
                  "full solve", "delta batch", "speedup"], rows)
    emit("sessions", text)
    emit_bench("sessions", bench_rows)


if __name__ == "__main__":
    test_session_delta_cost_benchmark()
