"""Serving throughput: worker-pool wall clock and virtual-stream makespan.

Runs one mixed 8-job batch — DMR refinement, mesh insertion, survey
propagation, points-to analysis, Boruvka MST, and generic-engine
recoloring — through :class:`repro.serve.Scheduler` at ``workers`` = 1,
2, and 4, then prices the same batch on the modeled GPU space-shared
into 1, 2, and 4 virtual streams (FIFO and SJF placement).

Two honesty notes, so the numbers mean what they say:

* Half the batch carries ``FaultPlan(kind="delay")`` injected stalls,
  modeling jobs blocked on an external resource (host transfer, cold
  cache, I/O).  Those delays are what a worker pool genuinely overlaps
  even on a single-core container; on a multicore machine the compute
  overlaps as well.  The per-job digests are asserted byte-identical
  across all worker counts, so the speedup is not bought with changed
  results.
* The virtual-stream numbers are *modeled GPU seconds* from the cost
  model, not wall clock — they answer the multi-tenancy what-if for the
  paper's device.

Emits ``BENCH_serve.json`` (schema ``repro.bench/1``) with one row per
(workers | streams, policy) configuration.
"""

from __future__ import annotations

import time

from harness import SCALE, emit, emit_bench, table

from repro.serve import FaultPlan, JobSpec, Scheduler
from repro.vgpu.streams import schedule_streams

#: injected external-resource stall per delayed job, seconds
DELAY_S = 0.8 / SCALE
#: every attempt number the delay fires on (delays are a property of
#: the job's environment, not of one attempt)
ALL_ATTEMPTS = tuple(range(1, 9))


def batch() -> list[JobSpec]:
    delay = FaultPlan(kind="delay", attempts=ALL_ATTEMPTS, delay_s=DELAY_S)
    s = SCALE
    return [
        JobSpec(name="dmr-a", algorithm="dmr",
                params={"n_triangles": 400 // s}, seed=1, fault=delay),
        JobSpec(name="dmr-b", algorithm="dmr",
                params={"n_triangles": 300 // s}, seed=2),
        JobSpec(name="insert-a", algorithm="insertion",
                params={"n_triangles": 240 // s, "n_points": 10}, seed=3,
                fault=delay),
        JobSpec(name="sp-a", algorithm="sp",
                params={"num_vars": 160 // s, "ratio": 3.4}, seed=4),
        JobSpec(name="pta-a", algorithm="pta",
                params={"num_vars": 100, "num_constraints": 160}, seed=5,
                fault=delay),
        JobSpec(name="mst-a", algorithm="mst",
                params={"num_nodes": 240 // s, "num_edges": 960 // s},
                seed=6),
        JobSpec(name="engine-a", algorithm="engine",
                params={"num_nodes": 140 // s}, seed=7, fault=delay),
        JobSpec(name="mst-b", algorithm="mst",
                params={"num_nodes": 200 // s, "num_edges": 700 // s},
                seed=8),
    ]


def main() -> None:
    rows, bench_rows = [], []
    digests_by_workers = {}
    base_wall = None
    counters = None

    for workers in (1, 2, 4):
        sched = Scheduler(workers=workers, policy="fifo")
        t0 = time.perf_counter()
        report = sched.run_batch(batch())
        wall = time.perf_counter() - t0
        assert report.ok, [r.failures for r in report.failed]
        digests_by_workers[workers] = {
            r.spec.name: r.result.digest for r in report.records}
        if counters is None:
            counters = {r.spec.name: r.result.counter
                        for r in report.records}
        if base_wall is None:
            base_wall = wall
        speedup = base_wall / wall
        rows.append([f"workers={workers}", f"{wall:.3f}s",
                     f"{speedup:.2f}x", "-"])
        bench_rows.append({"config": "pool", "workers": workers,
                           "policy": "fifo", "wall_s": round(wall, 4),
                           "speedup_vs_1": round(speedup, 3)})

    first = digests_by_workers[1]
    for workers, digs in digests_by_workers.items():
        assert digs == first, \
            f"digests diverged at workers={workers}"

    for policy in ("fifo", "sjf"):
        for streams in (1, 2, 4):
            sched = schedule_streams(counters, num_streams=streams,
                                     policy=policy)
            rows.append([f"streams={streams} ({policy})",
                         f"{sched.makespan * 1e3:.3f}ms (modeled)",
                         f"{sched.speedup_vs_serial:.2f}x",
                         f"{sched.mean_queue_delay * 1e3:.3f}ms"])
            bench_rows.append({
                "config": "streams", "streams": streams, "policy": policy,
                "modeled_makespan_s": round(sched.makespan, 6),
                "modeled_serial_s": round(sched.serial_seconds, 6),
                "speedup_vs_serial": round(sched.speedup_vs_serial, 3)})

    w4 = next(r for r in bench_rows
              if r["config"] == "pool" and r["workers"] == 4)
    assert w4["speedup_vs_1"] >= 2.0, \
        f"workers=4 speedup {w4['speedup_vs_1']} < 2x"

    text = table(["configuration", "wall / makespan", "speedup",
                  "mean queue delay"], rows)
    text += ("\n\ndigests byte-identical across workers=1/2/4: yes"
             f"\ninjected external-resource delay per flagged job: "
             f"{DELAY_S:.2f}s (4 of 8 jobs)")
    emit("serve_throughput", text)
    emit_bench("serve", bench_rows)


if __name__ == "__main__":
    main()
