"""Shared benchmark infrastructure.

* disk cache for expensive inputs (meshes) under ``benchmarks/.cache``,
* a results sink: every figure benchmark writes its paper-vs-measured
  table to ``benchmarks/results/<name>.txt`` *and* prints it,
* a machine-readable sink: :func:`emit_bench` appends each figure's
  modeled numbers to a top-level ``BENCH_<figure>.json`` trajectory
  file (schema in :mod:`repro.obs.export`), so successive runs of the
  suite build a history that plotting/regression tooling can diff,
* small table-formatting helpers.
"""

from __future__ import annotations

import os
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_DIR = BENCH_DIR.parent
CACHE_DIR = BENCH_DIR / ".cache"
RESULTS_DIR = BENCH_DIR / "results"

#: Environment knob: REPRO_BENCH_SCALE divides the default input sizes
#: (use e.g. REPRO_BENCH_SCALE=10 for a quick smoke pass).
SCALE = max(1, int(os.environ.get("REPRO_BENCH_SCALE", "1")))


def cached_mesh(n_triangles: int, seed: int = 0):
    """Random mesh, cached on disk across benchmark runs."""
    from repro.meshing.generate import random_mesh
    from repro.meshing.io import load_mesh, save_mesh

    CACHE_DIR.mkdir(exist_ok=True)
    base = CACHE_DIR / f"mesh_{n_triangles}_{seed}"
    if (base.with_suffix(".node")).exists():
        try:
            return load_mesh(base)
        except (OSError, ValueError, IndexError):
            # Corrupt or truncated cache entry (e.g. a benchmark run
            # killed mid-save): drop both files so the regenerated mesh
            # is not half-read from stale parts next time.
            base.with_suffix(".node").unlink(missing_ok=True)
            base.with_suffix(".ele").unlink(missing_ok=True)
    mesh = random_mesh(n_triangles, seed=seed)
    save_mesh(base, mesh)
    return mesh


def emit(name: str, text: str) -> None:
    """Print a result table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n", flush=True)


def emit_bench(figure: str, runs: list, *, append: bool | None = None) -> Path:
    """Write (or extend) the top-level ``BENCH_<figure>.json`` file.

    ``runs`` is a list of flat dicts (one per measured configuration);
    each row is stamped with the ``REPRO_BENCH_SCALE`` it was measured
    at so trajectories with mixed scales stay interpretable.
    ``append`` defaults from the ``REPRO_BENCH_APPEND`` environment
    knob: set it to keep a trajectory across suite runs instead of
    overwriting.  Appends are deduplicating: rows from a previous run
    at the same ``(scale, seed, config)`` are replaced, not duplicated,
    so re-running the suite twice leaves the trajectory unchanged.
    """
    from repro.obs import write_bench

    if append is None:
        append = os.environ.get("REPRO_BENCH_APPEND", "") not in ("", "0")
    runs = [{"scale": SCALE, **r} for r in runs]
    path = REPO_DIR / f"BENCH_{figure}.json"
    write_bench(path, figure, runs, append=append, dedupe=True)
    print(f"[bench] wrote {path} ({len(runs)} runs, append={append})",
          flush=True)
    return path


def fmt_time(seconds: float) -> str:
    if seconds != seconds:  # nan
        return "-"
    if seconds >= 100:
        return f"{seconds:8.0f}s "
    if seconds >= 1:
        return f"{seconds:8.2f}s "
    return f"{1000 * seconds:8.2f}ms"


def table(headers: list, rows: list) -> str:
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows)) + 2
              for i, h in enumerate(headers)] if rows else \
        [len(str(h)) + 2 for h in headers]
    out = ["".join(str(h).ljust(w) for h, w in zip(headers, widths))]
    out.append("".join("-" * (w - 1) + " " for w in widths))
    for r in rows:
        out.append("".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(out)
