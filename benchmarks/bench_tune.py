"""Autotuner benchmark — tuned vs paper-default strategies (Section 7).

The paper hand-picks one Section 7 mechanism combination per algorithm
and reports how much each choice matters (Fig. 8's optimization rows,
§6.4's push-vs-pull, §7.3's barrier progression).  ``repro.tune``
searches those same axes mechanically; this benchmark asserts the two
properties that make the tuner trustworthy:

* **never worse** — for DMR, SP, PTA and MST the tuned config's modeled
  GPU time is <= the paper default's on the standard bench inputs (the
  confirmation step in :func:`repro.tune.tune` guarantees it
  structurally; this measures it end to end);
* **reproducible** — two same-seed tuning runs write byte-identical
  cache files.

Emits ``BENCH_tune.json`` with one row per algorithm: default vs tuned
modeled times, the winning config, and the search effort.
"""

import json

from harness import SCALE, emit, emit_bench, fmt_time, table
from repro.tune import TuningCache, config_key, score_config, space_for, tune

#: (algorithm, params, engine, budget) — standard bench inputs, shrunk
#: by REPRO_BENCH_SCALE like every other suite in this directory
CASES = [
    ("dmr", {"n_triangles": max(100, 600 // SCALE)}, "halving", 10),
    ("sp", {"num_vars": max(50, 200 // SCALE)}, "exhaustive", 16),
    ("pta", {"num_vars": max(40, 120 // SCALE),
             "num_constraints": max(60, 200 // SCALE)}, "exhaustive", 16),
    ("mst", {"num_nodes": max(75, 300 // SCALE),
             "num_edges": max(300, 1200 // SCALE)}, "exhaustive", 16),
]

SEED = 11


def test_tuned_beats_paper_default(benchmark, tmp_path):
    rows, runs = [], []
    for algo, params, engine, budget in CASES:
        space = space_for(algo)
        default = space.canonical(space.default)
        base = score_config(algo, params, default, seed=SEED)
        res = tune(algo, params, budget=budget, seed=SEED, engine=engine,
                   cache=TuningCache(tmp_path / f"{algo}.json"))
        tuned = res.best
        # the acceptance bar: tuned is never worse than the paper default
        assert tuned.modeled_gpu_s <= base.modeled_gpu_s + 1e-12, algo
        speedup = base.modeled_gpu_s / max(tuned.modeled_gpu_s, 1e-12)
        rows.append((algo, res.engine, str(len(res.trials)),
                     fmt_time(base.modeled_gpu_s),
                     fmt_time(tuned.modeled_gpu_s), f"{speedup:.2f}x"))
        runs.append({"algorithm": algo, "engine": res.engine,
                     "budget": budget, "seed": SEED, "params": params,
                     "trials": len(res.trials),
                     "default_gpu_s": base.modeled_gpu_s,
                     "tuned_gpu_s": tuned.modeled_gpu_s,
                     "speedup": speedup,
                     "tuned_config": tuned.config})

    txt = table(["algo", "engine", "trials", "default", "tuned", "gain"],
                rows)
    emit("tune", txt + "\ntuned <= paper default on every algorithm "
         "(the tuner's confirmation step makes this structural)")
    emit_bench("tune", runs)

    benchmark.pedantic(
        lambda: tune("mst", {"num_nodes": 75, "num_edges": 300},
                     budget=4, seed=SEED).best.modeled_gpu_s,
        rounds=1, iterations=1)


def test_same_seed_tuning_is_byte_identical(tmp_path):
    params = {"num_nodes": max(75, 300 // SCALE),
              "num_edges": max(300, 1200 // SCALE)}
    blobs = []
    for name in ("first.json", "second.json"):
        cache = TuningCache(tmp_path / name)
        res = tune("mst", params, budget=16, seed=SEED, cache=cache)
        blobs.append(cache.path.read_bytes())
        assert not res.cache_hit
    assert blobs[0] == blobs[1]
    # and the recorded winner replays to the same canonical encoding
    doc = json.loads(blobs[0])
    (entry,) = doc["entries"].values()
    assert config_key(entry["config"]) == config_key(
        space_for("mst").canonical(entry["config"]))
