"""Ablation — push vs pull propagation in PTA (Section 6.4).

"The advantage of a pull-based approach is that, since only one thread
is processing each node, no synchronization is needed ... in a
push-based approach, multiple threads may simultaneously propagate
information to the same node and, in general, need to use
synchronization."

Both variants reach the identical fixed point; the push variant pays an
atomic per destination word.  The table shows the atomic counts and the
modeled GPU times for both.
"""

from scipy.stats import gmean

from harness import emit, table
from repro.pta import SPEC2000, andersen_pull, andersen_push, generate_spec_like
from repro.vgpu import CostModel


def test_ablation_push_vs_pull(benchmark):
    cm = CostModel()
    rows = []
    ratios = []
    for name in SPEC2000:
        cons = generate_spec_like(name, seed=0)
        pull = andersen_pull(cons)
        push = andersen_push(cons)
        assert pull.pts.equal(push.pts), name
        t_pull = cm.gpu_time(pull.counter)
        t_push = cm.gpu_time(push.counter)
        ratios.append(t_push / t_pull)
        rows.append((name,
                     pull.counter.kernel("pta.propagate").atomics,
                     push.counter.kernel("pta.propagate").atomics,
                     f"{1000 * t_pull:.2f}ms", f"{1000 * t_push:.2f}ms",
                     f"{t_push / t_pull:.2f}x"))
    txt = table(["benchmark", "pull atomics", "push atomics",
                 "pull GPU", "push GPU", "push/pull"], rows)
    geo = float(gmean(ratios))
    emit("ablation_pushpull", txt + f"\ngeomean push/pull cost: {geo:.2f}x")
    assert geo > 1.0, "pull must be cheaper on average (the paper's point)"

    cons = generate_spec_like("179.art", seed=0)
    benchmark.pedantic(lambda: andersen_pull(cons).rounds,
                       rounds=3, iterations=1)
