"""Ablation — global-barrier implementations (Section 7.3, Fig. 8 row 3).

The paper moves from a naive spin-on-atomic barrier, to a hierarchical
one (block-local __syncthreads + one atomic per block), to Xiao & Feng's
atomic-free fence-based barrier, gaining 1.57x on DMR.  We run the same
refinement under each barrier model and compare the modeled times and
the barrier-attributable atomics.
"""

from conftest import mesh_for
from harness import emit, fmt_time, table
from repro.dmr import DMRConfig, refine_gpu
from repro.vgpu import CostModel
from repro.vgpu.sync import FENCE, HIERARCHICAL, NAIVE_ATOMIC

BARRIERS = [("naive-atomic", NAIVE_ATOMIC), ("hierarchical", HIERARCHICAL),
            ("fence (Xiao-Feng + threadfence)", FENCE)]


def test_ablation_barriers(benchmark):
    cm = CostModel()
    mesh = mesh_for(2.0)
    rows = []
    times = []
    for label, bar in BARRIERS:
        res = refine_gpu(mesh.copy(), DMRConfig(seed=4, barrier=bar))
        assert res.converged
        t = cm.gpu_time(res.counter)
        times.append(t)
        crossings = res.counter.kernel("dmr.refine").barriers
        rows.append((label, crossings,
                     bar.atomics(112, 512) * crossings, fmt_time(t)))
    txt = table(["barrier", "crossings", "barrier atomics", "modeled time"],
                rows)
    emit("ablation_barriers", txt + "\npaper: rows 2->3 of Fig. 8 gain 1.57x "
         "from the atomic-free barrier")
    assert times[0] > times[1] > times[2]
    assert times[0] / times[2] > 1.5  # at least the paper's gain

    benchmark.pedantic(
        lambda: refine_gpu(mesh.copy(),
                           DMRConfig(seed=4, max_rounds=2)).rounds,
        rounds=1, iterations=1)
