"""Ablation — adaptive parallelism (Section 7.4).

"For DMR and PTA, we double the number of threads per block in every
iteration (starting from an initial value of 64 ...) for the first
three iterations.  This improves the work efficiency as well as the
overall performance (by 14% ...)."

We compare a fixed wide launch, the paper's doubling policy, and the
feedback policy that widens only while the abort ratio stays low.
Work efficiency = processed / attempted items.
"""

from conftest import mesh_for
from harness import emit, fmt_time, table
from repro.core.adaptive import AdaptiveConfig, FeedbackAdaptiveConfig, FixedConfig
from repro.dmr import DMRConfig, refine_gpu
from repro.vgpu import CostModel
from repro.vgpu.device import LaunchConfig

# The launch geometry must actually bind the number of in-flight items
# for the policy to matter; at 1/100 scale that means a single-SM-sized
# grid and fine-grained local worklists (min_chunk below).
POLICIES = [
    ("fixed 14x512", lambda: FixedConfig(LaunchConfig(14, 512))),
    ("paper doubling 64->512",
     lambda: AdaptiveConfig(initial_tpb=64, blocks=14)),
    ("feedback (abort-driven)",
     lambda: FeedbackAdaptiveConfig(initial_tpb=64, blocks=14)),
]


def test_ablation_adaptive(benchmark):
    cm = CostModel()
    mesh = mesh_for(2.0)
    rows = []
    eff = {}
    for label, make in POLICIES:
        res = refine_gpu(mesh.copy(), DMRConfig(seed=8, adaptive=make(),
                                                min_chunk=4))
        assert res.converged
        attempted = res.processed + res.aborted_conflicts + \
            res.aborted_geometry
        efficiency = res.processed / attempted
        eff[label] = (efficiency, cm.gpu_time(res.counter))
        rows.append((label, attempted, res.processed,
                     f"{efficiency:.2f}", fmt_time(eff[label][1])))
    txt = table(["policy", "attempted", "processed", "work efficiency",
                 "modeled time"], rows)
    emit("ablation_adaptive", txt + "\npaper: adaptive parallelism improved "
         "DMR by 14% (Fig. 8 row 5: 5380 -> 2200 ms combined effects)")

    # The feedback policy must not be less work-efficient than the
    # fixed wide launch.
    assert eff["feedback (abort-driven)"][0] >= eff["fixed 14x512"][0] - 0.05

    benchmark.pedantic(
        lambda: refine_gpu(mesh.copy(), DMRConfig(seed=8, max_rounds=3)),
        rounds=1, iterations=1)
