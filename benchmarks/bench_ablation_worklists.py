"""Ablation — local worklists vs a central queue (Section 7.5).

"Due to the large number of threads, it is inefficient to obtain these
graph elements from a centralized work queue.  Hence, we use a local
work queue per thread ... the combination of the memory layout
optimization and the local work queues forms a pseudo-partitioning of
the graph that helps reduce conflicts and boosts performance."

Two effects to show: the central queue costs one atomic per dequeue,
and — the larger effect — its in-flight items are *clustered*, so
cavities overlap and the abort ratio rockets.
"""

from conftest import mesh_for
from harness import emit, fmt_time, table
from repro.dmr import DMRConfig, refine_gpu
from repro.vgpu import CostModel


def test_ablation_worklists(benchmark):
    cm = CostModel()
    mesh = mesh_for(2.0)
    rows = []
    stats = {}
    for label, local in (("local per-thread chunks", True),
                         ("central atomic queue", False)):
        res = refine_gpu(mesh.copy(),
                         DMRConfig(seed=6, local_worklists=local))
        assert res.converged
        t = cm.gpu_time(res.counter)
        stats[local] = (res.abort_ratio, t)
        rows.append((label, f"{res.abort_ratio:.2f}",
                     res.counter.kernel("dmr.refine").atomics,
                     res.rounds, fmt_time(t)))
    txt = table(["worklist", "abort ratio", "queue atomics",
                 "kernel launches", "modeled time"], rows)
    emit("ablation_worklists", txt)

    assert stats[False][0] > stats[True][0], \
        "central queue must conflict more (clustered in-flight items)"
    assert stats[False][1] > stats[True][1], \
        "central queue must be slower"

    benchmark.pedantic(
        lambda: refine_gpu(mesh.copy(), DMRConfig(seed=6, max_rounds=2)),
        rounds=1, iterations=1)
