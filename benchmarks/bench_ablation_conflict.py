"""Ablation — conflict-resolution schemes (Section 7.3).

Three schemes over the same refinement workload:

* ``locks``: per-element atomic acquire/release (the pre-marking
  scheme; Fig. 8 row 1 territory) — correct but atomic-heavy;
* ``3phase``: the paper's race/prioritycheck/check marking — no atomics;
* ``2phase-unsafe``: the buggy race-and-prioritycheck variant the paper
  walks through; we measure how often its winners actually overlap.
"""

import numpy as np

from conftest import mesh_for
from harness import emit, fmt_time, table
from repro.core.conflict import three_phase_mark, two_phase_mark, winners_disjoint
from repro.core.ragged import Ragged
from repro.dmr import DMRConfig, refine_gpu
from repro.dmr.refine import _plan_batch
from repro.vgpu import CostModel


def overlap_rate(mesh, seeds=20):
    """Fraction of marking rounds in which the 2-phase engine produces
    overlapping winners on real DMR cavities (3-phase: must be zero)."""
    bad = mesh.bad_slots()[:256]
    two = three = 0
    for seed in range(seeds):
        rng = np.random.default_rng(seed)
        plans, _ = _plan_batch(mesh, bad, np.float64, rng)
        claims = Ragged.from_lists([p.claims for p in plans if p.ok])
        r2 = two_phase_mark(mesh.tri.shape[0], claims, rng)
        r3 = three_phase_mark(mesh.tri.shape[0], claims, rng)
        two += not winners_disjoint(claims, r2.winners)
        three += not winners_disjoint(claims, r3.winners)
    return two / seeds, three / seeds


def test_ablation_conflict_schemes(benchmark):
    cm = CostModel()
    mesh = mesh_for(1.0)
    rows = []
    times = {}
    for scheme in ("locks", "3phase"):
        res = refine_gpu(mesh.copy(), DMRConfig(seed=7, conflict=scheme))
        assert res.converged
        t = cm.gpu_time(res.counter)
        times[scheme] = t
        rows.append((scheme, res.counter.kernel("dmr.refine").atomics,
                     f"{res.abort_ratio:.2f}", fmt_time(t)))
    two_rate, three_rate = overlap_rate(mesh)
    txt = "\n".join([
        table(["scheme", "atomics", "abort ratio", "modeled time"], rows),
        f"\n2-phase race-and-prioritycheck: overlapping winners in "
        f"{100 * two_rate:.0f}% of marking rounds (the Section 7.3 bug)",
        f"3-phase race-prioritycheck-check: {100 * three_rate:.0f}% "
        f"(guaranteed disjoint)",
    ])
    emit("ablation_conflict", txt)
    assert times["3phase"] < times["locks"]
    assert three_rate == 0.0
    assert two_rate > 0.3  # the bug fires regularly on real cavities

    benchmark.pedantic(lambda: overlap_rate(mesh, seeds=3),
                       rounds=1, iterations=1)
