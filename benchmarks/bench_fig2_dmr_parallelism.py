"""Fig. 2 — available parallelism profile of DMR (ParaMeter-style).

The paper profiles DMR on a 100K-triangle mesh with half the triangles
initially bad: parallelism starts around 5,000 independent bad
triangles, peaks above 7,000, then decays.  We reproduce the profile at
1/10 scale with a step-synchronous greedy maximal-independent-set
executor over the *claim sets* (cavity + ring) of all active bad
triangles, re-planned each step with the vectorized device planner.
"""

import numpy as np

from harness import SCALE, cached_mesh, emit, table
from repro.dmr import apply_plan
from repro.dmr.refine import _plan_batch
from repro.vgpu.memory import RecyclePool


def available_parallelism_profile(mesh, seed=0, max_steps=2000):
    """Greedy-MIS steps over all currently-bad triangles; returns the
    per-step MIS sizes (the Fig. 2 series)."""
    rng = np.random.default_rng(seed)
    pool = RecyclePool()
    steps = []
    for _ in range(max_steps):
        bad = mesh.bad_slots()
        if bad.size == 0:
            return steps
        plans, _ = _plan_batch(mesh, bad, np.float64, rng)
        claimed: set = set()
        batch = []
        order = rng.permutation(len(plans))
        for i in order:
            p = plans[int(i)]
            if not p.ok:
                continue
            if any(t in claimed for t in p.claims):
                continue
            claimed.update(p.claims)
            batch.append(p)
        if not batch:
            return steps
        steps.append(len(batch))
        for p in batch:
            slots, new_tail = pool.allocate(len(p.cavity) + 4, mesh.n_tris)
            if new_tail > mesh.tri.shape[0]:
                mesh.ensure_tri_capacity(int(new_tail * 1.5) + 8)
            mesh.n_tris = max(mesh.n_tris, new_tail)
            try:
                info = apply_plan(mesh, p, slots)
            except (RuntimeError, ValueError):
                continue
            used = set(info.new_slots)
            pool.release(np.asarray(
                [s for s in slots.tolist() if s not in used]
                + list(p.cavity), dtype=np.int64))
    raise RuntimeError("profile did not terminate")


def test_fig2_parallelism_profile(benchmark):
    mesh = cached_mesh(max(500, 10_000 // SCALE), seed=2)
    profile = available_parallelism_profile(mesh.copy())
    arr = np.asarray(profile)
    peak = int(arr.max())
    peak_step = int(arr.argmax())
    # Downsample the series for the table.
    idx = np.unique(np.linspace(0, arr.size - 1, 15).astype(int))
    rows = [(int(i), int(arr[i])) for i in idx]
    txt = "\n".join([
        f"steps: {arr.size}, total work: {int(arr.sum())}, "
        f"peak parallelism: {peak} at step {peak_step}",
        "paper (100K mesh): ~5000 initially, peak >7000, then decay",
        table(["step", "available parallelism"], rows),
    ])
    emit("fig2_dmr_parallelism", txt)

    # Shape assertions: ramp up then decay, peak in the first half,
    # peak well above the tail.
    assert peak_step < arr.size / 2
    assert peak > 4 * arr[-1]
    assert peak > arr[0]  # initial rise, as in the paper

    benchmark.pedantic(
        lambda: available_parallelism_profile(
            cached_mesh(500, seed=3).copy()),
        rounds=1, iterations=1)
