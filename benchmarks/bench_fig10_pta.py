"""Fig. 10 — Points-to Analysis on six SPEC 2000 benchmarks.

Paper (ms):

    benchmark    vars   cons   serial  Galois-48  GPU
    186.crafty   6126   6768   595     86         44.4
    164.gzip     1595   1773   456     73          7.1
    256.bzip2    1147   1081   396     94          2.7
    181.mcf      1230   1509   382     59          8.7
    183.equake   1317   1279   436     49          3.3
    179.art       586    603   485     72          7.4

Headline: geometric-mean GPU speedup of 9.3x over the 48-thread
version; the paper notes all six analyses complete on the GPU in 74 ms
total.  We synthesize constraint sets with the exact vars/cons counts
(DESIGN.md section 2), run the pull-based GPU analysis, the push-based
multicore stand-in, and the serial worklist analysis, and verify all
three reach the identical fixed point before timing them.
"""

from scipy.stats import gmean

from harness import emit, emit_bench, table
from paper_data import FIG10_PTA, FIG10_GEOMEAN_SPEEDUP, SCALE_NOTES
from repro.pta import (andersen_pull, andersen_push, andersen_serial,
                       generate_spec_like)
from repro.vgpu import CostModel


def test_fig10_pta(benchmark):
    cm = CostModel()
    rows = []
    speedups = []
    bench_rows = []
    total_gpu_ms = 0.0
    for name, (nvars, ncons, p_serial, p_g48, p_gpu) in FIG10_PTA.items():
        cons = generate_spec_like(name, seed=0)
        gpu = andersen_pull(cons)
        push = andersen_push(cons)
        serial = andersen_serial(cons)
        assert gpu.pts.equal(push.pts), name
        assert gpu.total_facts() == serial.total_facts(), name
        gpu_ms = 1000 * cm.gpu_time(gpu.counter)
        g48_ms = 1000 * cm.cpu_time(push.counter, 48)
        ser_ms = 1000 * cm.serial_time(serial.counter)
        total_gpu_ms += gpu_ms
        speedups.append(g48_ms / gpu_ms)
        rows.append((name, nvars, ncons, gpu.total_facts(),
                     f"{p_serial}", f"{ser_ms:.1f}",
                     f"{p_g48}", f"{g48_ms:.1f}",
                     f"{p_gpu}", f"{gpu_ms:.2f}"))
        bench_rows.append({"benchmark": name, "vars": nvars, "cons": ncons,
                           "facts": gpu.total_facts(), "serial_ms": ser_ms,
                           "galois48_ms": g48_ms, "gpu_ms": gpu_ms})
    geo = float(gmean(speedups))
    txt = "\n".join([
        SCALE_NOTES,
        table(["benchmark", "vars", "cons", "facts",
               "paper serial(ms)", "ours serial",
               "paper g48(ms)", "ours g48",
               "paper GPU(ms)", "ours GPU"], rows),
        f"\npaper geomean GPU speedup over Galois-48: "
        f"{FIG10_GEOMEAN_SPEEDUP}x;  ours: {geo:.1f}x",
        f"paper total GPU time for all six: 74 ms;  "
        f"ours: {total_gpu_ms:.1f} ms",
    ])
    emit("fig10_pta", txt)
    emit_bench("fig10", bench_rows)

    # Shape: GPU beats the multicore on every input, by about an order
    # of magnitude in the geometric mean.
    assert all(s > 1 for s in speedups)
    assert geo > 3

    cons = generate_spec_like("179.art", seed=0)
    benchmark.pedantic(lambda: andersen_pull(cons).total_facts(),
                       rounds=3, iterations=1)
