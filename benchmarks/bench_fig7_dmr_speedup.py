"""Fig. 7 — DMR speedups over the sequential implementation.

Paper (10M triangles): Galois-48 26.5x, GPU 60.6x; across inputs the
GPU lands between 54.6x and 80.5x, i.e. 2-4x over the multicore.  Our
scaled inputs sit below the GPU's amortization point at the small end
(kernel dispatch and barrier overheads dominate tiny meshes), so the
reproduction's GPU speedup *grows* with input size and matches the
paper's regime at the largest input.
"""

from harness import emit, table
from paper_data import FIG7_DMR, SCALE_NOTES
from repro.vgpu import CostModel


def test_fig7_dmr_speedup(dmr_runs, benchmark):
    cm = CostModel()
    rows = []
    for paper_size, run in sorted(dmr_runs.items()):
        serial_t = cm.serial_time(run["serial"].counter)
        cpu_t = cm.cpu_time(run["galois"].counter, 48)
        gpu_t = cm.gpu_time(run["gpu"].counter)
        paper_bad, paper_g48, paper_gpu = FIG7_DMR[paper_size]
        rows.append((
            f"{paper_size}M",
            f"{run['mesh_tris']}",
            f"{run['bad']}",
            f"{paper_g48:.1f}x",
            f"{serial_t / cpu_t:.1f}x",
            f"{paper_gpu:.1f}x",
            f"{serial_t / gpu_t:.1f}x",
        ))
    txt = table(["paper input", "our tris", "our bad",
                 "paper galois48", "ours galois48",
                 "paper GPU", "ours GPU"], rows)
    emit("fig7_dmr_speedup", SCALE_NOTES + "\n" + txt)

    # sanity assertions on the reproduced shape
    largest = max(dmr_runs)
    run = dmr_runs[largest]
    serial_t = cm.serial_time(run["serial"].counter)
    cpu_t = cm.cpu_time(run["galois"].counter, 48)
    gpu_t = cm.gpu_time(run["gpu"].counter)
    assert serial_t / cpu_t > 15, "multicore speedup collapsed"
    assert serial_t / gpu_t > serial_t / cpu_t, \
        "GPU must beat multicore at the largest input (paper's headline)"

    benchmark.pedantic(lambda: cm.times(run["gpu"].counter,
                                        run["galois"].counter,
                                        run["serial"].counter),
                       rounds=3, iterations=1)
