"""Durability cost and crash-restart recovery time for the gateway.

Two questions, each with a number and an assertion:

* **What does the write-ahead journal cost?**  The same mixed workload
  runs through two identical gateways — one without a journal, one
  journaling (fsync'd) every admit/dispatch/done — and the run asserts
  the journaled p99 submit-to-done latency stays within 10% of the
  baseline (plus a small absolute slack so millisecond-scale jitter on
  a fast disk cannot fail the relative bound).  Queue-dominated latency
  is the honest denominator here: that is what a loaded gateway's
  clients actually see.

* **How fast is crash-to-first-result?**  A journaled gateway is
  hard-stopped mid-backlog (workers terminated, nothing drained — the
  process-crash shape), a fresh gateway is pointed at the same journal
  directory, and the clock runs from its construction until the first
  requeued job resolves.  Every recovered digest must be byte-identical
  to an inline (``workers=0``) replay, and every pre-crash submission
  must resolve exactly once — recovery that loses or duplicates work
  would make the speed number meaningless.

Rows land in ``BENCH_serve.json`` (schema ``repro.bench/1``) with
``config="recovery"`` / ``"recovery_overhead"``.
"""

from __future__ import annotations

import statistics
import tempfile
import time
from pathlib import Path

from harness import SCALE, emit, emit_bench, table

from repro.gateway import Gateway, GatewayConfig, TenantQuota
from repro.serve.jobs import JobSpec
from repro.serve.pool import run_job

WORKERS = 2
#: plain jobs per measured run at SCALE=1 (CI divides via REPRO_BENCH_SCALE)
N_JOBS = max(8, 160 // SCALE)
#: relative p99 budget for the journal, plus absolute slack (seconds)
P99_BUDGET = 1.10
P99_SLACK_S = 0.05

TEMPLATES = (
    ("sp", {"num_vars": 24, "k": 3, "ratio": 3.0}),
    ("pta", {"num_vars": 30, "num_constraints": 60}),
    ("engine", {"num_nodes": 50, "num_edges": 150}),
    ("mst", {"num_nodes": 40, "num_edges": 120}),
)


def job_spec(i: int) -> JobSpec:
    algo, params = TEMPLATES[i % len(TEMPLATES)]
    return JobSpec(name=f"{algo}-{i}", algorithm=algo,
                   params=params, seed=300 + i)


def _config(journal_dir: str | None) -> GatewayConfig:
    return GatewayConfig(workers=WORKERS, journal_dir=journal_dir,
                         max_total_pending=N_JOBS * 2,
                         default_quota=TenantQuota(max_inflight=N_JOBS * 2,
                                                   max_queued=N_JOBS * 2))


def measure_latency(journal_dir: str | None) -> dict:
    """Submit the whole backlog, wait it out, report the latency shape."""
    with Gateway(_config(journal_dir)) as gateway:
        t0 = time.perf_counter()
        handles = [gateway.submit("bench", job_spec(i))
                   for i in range(N_JOBS)]
        for h in handles:
            h.wait(600)
        wall = time.perf_counter() - t0
        assert all(h.ok for h in handles)
        journal_stats = gateway.stats()["journal"]
        latencies = sorted(h.latency_s for h in handles)
    n = len(latencies)
    return {
        "jobs": n, "workers": WORKERS, "wall_s": round(wall, 4),
        "jobs_per_s": round(n / wall, 2),
        "p50_latency_s": round(latencies[n // 2], 5),
        "p99_latency_s": round(latencies[min(n - 1, (n * 99) // 100)], 5),
        "mean_latency_s": round(statistics.fmean(latencies), 5),
        "journal": journal_stats,
    }


def measure_recovery(journal_dir: str) -> dict:
    """Crash a journaled gateway mid-backlog; time the restart."""
    n = max(6, N_JOBS // 4)
    with Gateway(_config(journal_dir)) as g1:
        job_ids = [g1.submit("bench", job_spec(i)).job_id
                   for i in range(n)]
        # Hard stop with the backlog in flight: workers terminated,
        # nothing drained — the journal is all that survives.
        g1.stop()

    t0 = time.perf_counter()
    g2 = Gateway(_config(journal_dir))
    g2.start()
    started_s = time.perf_counter() - t0
    try:
        handles = [g2.handle(job_id) for job_id in job_ids]
        assert all(h is not None for h in handles), \
            "recovery lost a journaled submission"
        pending = [h for h in handles if not h.done]
        first_s = started_s
        if pending:
            pending[0].wait(600)
            first_s = time.perf_counter() - t0
        for h in handles:
            h.wait(600)
        all_s = time.perf_counter() - t0

        # Recovered outcomes must be byte-identical to inline replays.
        for i, h in enumerate(handles):
            assert h.ok, (h.job_id, h.error)
            inline = run_job(job_spec(i))
            assert h.digest() == inline.result.digest, \
                f"digest mismatch after recovery on job {i}"
        recovered = g2.bus.count("recovered")
        snapshot = g2.stats()
        assert snapshot["admission"]["total_pending"] == 0, \
            "recovery left the admission ledger unsettled"
    finally:
        g2.stop()
    return {
        "jobs": n, "requeued": len(pending),
        "recovered_events": recovered,
        "restart_warm_s": round(started_s, 4),
        "crash_to_first_result_s": round(first_s, 4),
        "crash_to_all_results_s": round(all_s, 4),
    }


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="bench-recovery-") as tmp:
        base = measure_latency(None)
        journaled = measure_latency(str(Path(tmp) / "journal-overhead"))
        recovery = measure_recovery(str(Path(tmp) / "journal-crash"))

    budget = base["p99_latency_s"] * P99_BUDGET + P99_SLACK_S
    assert journaled["p99_latency_s"] <= budget, \
        (f"journaled p99 {journaled['p99_latency_s']}s exceeds "
         f"{P99_BUDGET:.0%} of baseline {base['p99_latency_s']}s "
         f"+ {P99_SLACK_S}s slack")

    overhead_pct = 100.0 * (journaled["p99_latency_s"] -
                            base["p99_latency_s"]) / base["p99_latency_s"]
    per_record_us = 1e6 * journaled["wall_s"] / \
        max(1, journaled["journal"]["records_written"])
    rows = [
        ["jobs x workers", f"{base['jobs']} x {WORKERS}"],
        ["baseline p50 / p99",
         f"{base['p50_latency_s'] * 1e3:.1f} / "
         f"{base['p99_latency_s'] * 1e3:.1f} ms"],
        ["journaled p50 / p99",
         f"{journaled['p50_latency_s'] * 1e3:.1f} / "
         f"{journaled['p99_latency_s'] * 1e3:.1f} ms"],
        ["journal p99 overhead", f"{overhead_pct:+.1f}% "
         f"(budget {P99_BUDGET:.0%} + {P99_SLACK_S * 1e3:.0f} ms)"],
        ["journal records / bytes",
         f"{journaled['journal']['records_written']} / "
         f"{journaled['journal']['bytes_written']}"],
        ["wall per journal record", f"{per_record_us:.0f} us"],
        ["crash: jobs in flight", str(recovery["jobs"])],
        ["crash: requeued on restart", str(recovery["requeued"])],
        ["restart to warm", f"{recovery['restart_warm_s']:.3f}s"],
        ["crash to first result",
         f"{recovery['crash_to_first_result_s']:.3f}s"],
        ["crash to full backlog",
         f"{recovery['crash_to_all_results_s']:.3f}s"],
    ]
    text = table(["metric", "value"], rows)
    text += ("\n\nevery recovered digest byte-identical to the inline "
             "workers=0 replay; admission ledger settled after "
             "recovery: yes")
    emit("recovery", text)
    emit_bench("serve", [
        {"config": "recovery_overhead",
         "baseline_p99_s": base["p99_latency_s"],
         "journaled_p99_s": journaled["p99_latency_s"],
         "overhead_pct": round(overhead_pct, 2),
         "records_written": journaled["journal"]["records_written"],
         "bytes_written": journaled["journal"]["bytes_written"],
         "jobs": base["jobs"], "workers": WORKERS},
        {"config": "recovery", **recovery},
    ], append=True)


def test_recovery_benchmark():
    """CI entry point (reduced scale via REPRO_BENCH_SCALE)."""
    main()


if __name__ == "__main__":
    main()
