"""Ablation — subgraph-addition strategies (Section 7.1).

Two workloads exercise the strategy space:

* DMR grows its triangle arrays host-side: the over-allocation factor
  trades wasted capacity against realloc copies (Host-Only / on-demand).
* PTA grows per-node incoming-edge lists in-kernel: the chunk size
  trades allocation frequency against internal fragmentation
  (Kernel-Only; "the best chunk size is input dependent and ... varies
  between 512 and 4096").
"""

from conftest import mesh_for
from harness import emit, fmt_time, table
from repro.dmr import DMRConfig, refine_gpu
from repro.pta import andersen_pull, generate_spec_like
from repro.vgpu import CostModel


def test_ablation_dmr_growth_factor(benchmark):
    cm = CostModel()
    mesh = mesh_for(1.0)
    rows = []
    stats = {}
    for factor in (1.0, 1.2, 1.5, 2.0):
        res = refine_gpu(mesh.copy(), DMRConfig(seed=5, growth_factor=factor))
        assert res.converged
        reallocs = int(res.counter.scalars.get("reallocs", 0))
        mallocs = int(res.counter.scalars.get("kernel_mallocs", 0))
        copied = int(res.counter.scalars.get("realloc_words", 0))
        stats[factor] = (reallocs, mallocs, cm.gpu_time(res.counter))
        label = "on-demand (in-kernel malloc)" if factor <= 1.0 else \
            f"{factor:.1f}"
        rows.append((label, reallocs, mallocs, copied,
                     fmt_time(stats[factor][2])))
    txt = table(["growth strategy", "reallocs", "kernel mallocs",
                 "words copied", "modeled time"], rows)
    emit("ablation_addition_dmr",
         txt + "\npaper Fig. 8 rows 7->8: on-demand allocation cost "
         "1020 -> 1140 ms (+12%)")
    assert stats[1.0][1] > 0, "on-demand must use in-kernel malloc"
    assert stats[2.0][0] <= 5, "2x over-allocation must rarely realloc"
    assert stats[1.0][2] < 3 * stats[2.0][2], \
        "on-demand should cost extra but not blow up (paper: +12%)"

    benchmark.pedantic(
        lambda: refine_gpu(mesh.copy(), DMRConfig(seed=5, max_rounds=2)),
        rounds=1, iterations=1)


def test_ablation_pta_chunk_size(benchmark):
    rows = []
    frag = {}
    chunks = {}
    for size in (16, 64, 256, 1024, 4096):
        res = andersen_pull(generate_spec_like("186.crafty", seed=0),
                            chunk_size=size)
        alloc = None
        # recover allocator stats through the result's counter scalars
        mallocs = int(res.counter.scalars.get("pta.chunks_malloced", 0))
        chunks[size] = mallocs
        rows.append((size, mallocs, res.edges_added))
    txt = table(["chunk size", "in-kernel chunk mallocs", "edges added"],
                rows)
    emit("ablation_addition_pta", txt + "\npaper: best chunk size between "
         "512 and 4096; chunking 'reduces the frequency of memory "
         "allocation at the cost of some internal fragmentation'")
    assert chunks[16] > chunks[4096], \
        "smaller chunks must allocate more often"

    cons = generate_spec_like("179.art", seed=0)
    benchmark.pedantic(lambda: andersen_pull(cons, chunk_size=1024),
                       rounds=3, iterations=1)
