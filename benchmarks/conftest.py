"""Session-scoped fixtures shared by the DMR figure benchmarks.

Figures 6, 7 and 8 evaluate the same refinement runs; computing each
(gpu / galois / serial) triple once per input keeps the suite's wall
time tractable.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from harness import SCALE, cached_mesh  # noqa: E402

#: Paper DMR inputs (millions of triangles) -> our scaled sizes (/100).
DMR_SIZES = {0.5: 5_000, 1.0: 10_000, 2.0: 20_000, 10.0: 100_000}


@pytest.fixture(scope="session")
def dmr_runs():
    """{paper_mtris: dict(gpu=, galois=, serial=, mesh_tris=, bad=)}."""
    from repro.dmr import refine_galois, refine_gpu, refine_sequential

    out = {}
    for paper_size, n_tris in DMR_SIZES.items():
        n = max(500, n_tris // SCALE)
        mesh = cached_mesh(n, seed=int(paper_size * 10))
        out[paper_size] = {
            "mesh_tris": mesh.num_triangles,
            "bad": int(mesh.bad_slots().size),
            "gpu": refine_gpu(mesh.copy()),
            "galois": refine_galois(mesh.copy(), threads=48),
            "serial": refine_sequential(mesh.copy()),
        }
    return out


def mesh_for(paper_size: float):
    """The same cached mesh instance a figure fixture used."""
    n = max(500, DMR_SIZES[paper_size] // SCALE)
    return cached_mesh(n, seed=int(paper_size * 10))
