"""Fig. 6 — DMR runtime: GPU vs serial (Triangle) vs multicore (Galois)
across thread counts, for four input sizes.

The paper plots, per input, the multicore runtime as a function of
thread count with the serial and GPU times as horizontal lines.  This
benchmark reproduces the same series from modeled times: the Galois
emulation runs with 48 speculative threads and the model prices its
counted work at each thread count (lower counts conflict less, so the
modeled curve is, if anything, pessimistic for small thread counts).
"""


from harness import RESULTS_DIR, emit, emit_bench, fmt_time, table
from paper_data import SCALE_NOTES
from repro.obs import Tracer, chrome_trace, validate_chrome_trace, write_chrome_trace
from repro.vgpu import CostModel

THREADS = [1, 2, 4, 8, 16, 32, 48]


def test_fig6_dmr_runtime(dmr_runs, benchmark):
    cm = CostModel()
    lines = [SCALE_NOTES]
    bench_rows = []
    for paper_size, run in sorted(dmr_runs.items()):
        rows = []
        serial_t = cm.serial_time(run["serial"].counter)
        gpu_t = cm.gpu_time(run["gpu"].counter)
        for t in THREADS:
            rows.append((f"galois-{t}",
                         fmt_time(cm.cpu_time(run["galois"].counter, t))))
        rows.append(("serial (Triangle role)", fmt_time(serial_t)))
        rows.append(("GPU", fmt_time(gpu_t)))
        lines.append(f"input ~{paper_size}M paper-triangles "
                     f"(ours: {run['mesh_tris']} tris, {run['bad']} bad)")
        lines.append(table(["configuration", "modeled time"], rows))
        lines.append("")
        bench_rows.append({
            "input_mtris": paper_size,
            "mesh_tris": run["mesh_tris"],
            "bad": run["bad"],
            "gpu_s": gpu_t,
            "serial_s": serial_t,
            "galois48_s": cm.cpu_time(run["galois"].counter, 48),
        })
    emit("fig6_dmr_runtime", "\n".join(lines))

    # Traced re-run of the smallest input: export a Chrome trace of the
    # modeled launch timeline and validate it against the schema.
    from conftest import mesh_for
    from repro.dmr import refine_gpu, DMRConfig
    smallest = min(dmr_runs)
    tracer = Tracer()
    refine_gpu(mesh_for(smallest), tracer=tracer)
    doc = chrome_trace(tracer)
    validate_chrome_trace(doc)
    phase_names = {e["name"] for e in doc["traceEvents"]
                   if e.get("cat") == "conflict.phase"}
    assert {"race", "prioritycheck", "check"} <= phase_names
    RESULTS_DIR.mkdir(exist_ok=True)
    write_chrome_trace(RESULTS_DIR / "fig6_dmr_trace.json", tracer)
    bench_rows.append({"input_mtris": smallest, "traced": True,
                       **tracer.metrics()})
    emit_bench("fig6", bench_rows)

    # Measured quantity for pytest-benchmark: one GPU kernel iteration
    # on the smallest input (simulator throughput).
    mesh = mesh_for(smallest)

    benchmark.pedantic(
        lambda: refine_gpu(mesh.copy(), DMRConfig(max_rounds=1)),
        rounds=1, iterations=1)
