"""Fig. 6 — DMR runtime: GPU vs serial (Triangle) vs multicore (Galois)
across thread counts, for four input sizes.

The paper plots, per input, the multicore runtime as a function of
thread count with the serial and GPU times as horizontal lines.  This
benchmark reproduces the same series from modeled times: the Galois
emulation runs with 48 speculative threads and the model prices its
counted work at each thread count (lower counts conflict less, so the
modeled curve is, if anything, pessimistic for small thread counts).
"""


from harness import emit, fmt_time, table
from paper_data import SCALE_NOTES
from repro.vgpu import CostModel

THREADS = [1, 2, 4, 8, 16, 32, 48]


def test_fig6_dmr_runtime(dmr_runs, benchmark):
    cm = CostModel()
    lines = [SCALE_NOTES]
    for paper_size, run in sorted(dmr_runs.items()):
        rows = []
        serial_t = cm.serial_time(run["serial"].counter)
        gpu_t = cm.gpu_time(run["gpu"].counter)
        for t in THREADS:
            rows.append((f"galois-{t}",
                         fmt_time(cm.cpu_time(run["galois"].counter, t))))
        rows.append(("serial (Triangle role)", fmt_time(serial_t)))
        rows.append(("GPU", fmt_time(gpu_t)))
        lines.append(f"input ~{paper_size}M paper-triangles "
                     f"(ours: {run['mesh_tris']} tris, {run['bad']} bad)")
        lines.append(table(["configuration", "modeled time"], rows))
        lines.append("")
    emit("fig6_dmr_runtime", "\n".join(lines))

    # Measured quantity for pytest-benchmark: one GPU kernel iteration
    # on the smallest input (simulator throughput).
    from conftest import mesh_for
    from repro.dmr import refine_gpu, DMRConfig
    smallest = min(dmr_runs)
    mesh = mesh_for(smallest)

    benchmark.pedantic(
        lambda: refine_gpu(mesh.copy(), DMRConfig(max_rounds=1)),
        rounds=1, iterations=1)
